//! The readiness reactor: one poll thread sweeping every session's
//! nonblocking socket, plus a small pinned worker pool for frame
//! processing. This replaces the thread-per-connection plane — a daemon's
//! thread count is now fixed (reactor + workers + the epoch loop and its
//! per-peer dialers/ticker) no matter how many thousands of sessions are
//! open.
//!
//! Built on `std::net` only: with no `epoll`/`kqueue` binding available, the
//! reactor discovers readiness by attempting nonblocking I/O on every
//! session each sweep (`WouldBlock` = not ready) and parks briefly when a
//! sweep makes no progress. That is O(sessions) syscalls per sweep, which is
//! exactly the regime the paper's epoch batching amortizes: work arrives in
//! epoch-sized bursts, so most sweeps either move many frames or sleep.
//!
//! A session's lifecycle:
//!
//! ```text
//! accept ──► Handshake ──HELLO──► Open ──► Draining ──► Closed
//!            (first frame)        ▲  │ (flush, then close)
//! register ───────────────────────┘  └──► Closed (error / EOF / kill)
//! ```
//!
//! * Accepted sockets start in `Handshake`: the first frame must be a
//!   plaintext [`Hello`], which the daemon's [`Acceptor`] turns into a
//!   [`SessionHandler`] (or rejects).
//! * Dialer-established sockets (balancer → subORAM) are registered already
//!   `Open`, handler attached, via [`ReactorHandle::register`].
//! * Frames are dispatched to the worker pinned by session id, so every
//!   session's frames are processed in arrival order — the AEAD links
//!   require strict nonce order — while distinct sessions proceed in
//!   parallel.
//! * Writes from any thread ([`SessionHandle::send_frame`]) enqueue into the
//!   session's bounded [`OutBuf`]; only the reactor thread touches the
//!   socket, so frames can never interleave or reorder.
//! * `Draining` flushes the outbound buffer, then runs
//!   [`SessionHandler::on_drained`] before closing — this is how a
//!   `SHUTDOWN_ACK` is guaranteed onto the wire before the daemon exits.

use crate::proto::{tag, Hello};
use crate::session::{FrameAssembler, OutBuf, Overflow, ReadStep};
use snoopy_telemetry::events::{self, Event, EventKind};
use snoopy_telemetry::{metrics, Public};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Read budget per session per sweep: a firehose peer yields the reactor to
/// its neighbours after this many bytes.
const READ_BUDGET: usize = 64 << 10;
/// How long a handshake may sit without producing a valid hello.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);
/// Idle park between sweeps that made no progress.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// What a handler tells the reactor after processing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep the session open.
    Continue,
    /// Kill the session now; pending outbound bytes are discarded.
    Close,
    /// Stop reading, flush everything outbound, run
    /// [`SessionHandler::on_drained`], then close.
    CloseAfterFlush,
}

/// Per-session protocol logic, driven by a pinned worker (or inline by the
/// reactor when the pool is empty). One handler instance per session; calls
/// are serialized in frame-arrival order.
pub trait SessionHandler: Send {
    /// Processes one complete inbound frame.
    fn on_frame(&mut self, tag: u8, body: Vec<u8>, handle: &SessionHandle) -> Control;
    /// Runs after a [`Control::CloseAfterFlush`] drain reaches the wire,
    /// just before the socket closes. The place for "ack flushed, now act"
    /// effects (e.g. triggering daemon shutdown).
    fn on_drained(&mut self) {}
    /// Runs exactly once when the session closes, however it closed.
    fn on_close(&mut self) {}
}

const STATE_OPEN: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_CLOSED: u8 = 2;

/// State shared between the reactor thread, the workers, and any thread
/// holding a [`SessionHandle`].
struct SessionShared {
    out: Mutex<OutBuf>,
    state: AtomicU8,
    /// Frames parsed but not yet processed by the pinned worker.
    inflight: AtomicUsize,
    inflight_cap: usize,
}

impl SessionShared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn request_close(&self) {
        self.state.store(STATE_CLOSED, Ordering::Release);
    }

    fn request_drain(&self) {
        let _ = self.state.compare_exchange(
            STATE_OPEN,
            STATE_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
}

/// A clonable, thread-safe handle to one session: enqueue outbound frames,
/// request close. Held by reply sinks, transports, and handlers.
#[derive(Clone)]
pub struct SessionHandle {
    shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// Enqueues one frame for in-order delivery. Returns `false` — and
    /// kills the session — if the peer has let the bounded outbound buffer
    /// hit its hard cap (the nonblocking plane's analogue of a write
    /// timeout), or if the session is already closing. A `false` means the
    /// frame was *not* accepted; nothing is ever partially enqueued.
    pub fn send_frame(&self, tag: u8, body: &[u8]) -> bool {
        if self.shared.state() != STATE_OPEN {
            return false;
        }
        match self.shared.out.lock().unwrap().push_frame(tag, body) {
            Ok(()) => true,
            Err(Overflow) => {
                self.shared.request_close();
                false
            }
        }
    }

    /// Kills the session; the reactor tears it down on its next sweep
    /// (pending outbound bytes are discarded).
    pub fn close(&self) {
        self.shared.request_close();
    }

    /// True once the session is closed or condemned.
    pub fn is_closed(&self) -> bool {
        self.shared.state() == STATE_CLOSED
    }
}

/// Turns an accepted connection's hello into that session's handler, or
/// rejects it with `None`. Runs on the reactor thread — keep it cheap (key
/// derivation is fine; blocking I/O is not).
pub type Acceptor = Box<dyn FnMut(Hello, &SessionHandle) -> Option<Box<dyn SessionHandler>> + Send>;

/// Backpressure and pool sizing for one reactor.
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Worker threads for frame processing; `0` processes frames inline on
    /// the reactor thread (lowest latency on small machines).
    pub workers: usize,
    /// Per-session outbound watermark: reads pause above it.
    pub watermark: usize,
    /// Per-session outbound hard cap: sessions die at it.
    pub hard_cap: usize,
    /// Per-session bound on frames awaiting a worker: reads pause at it.
    pub inflight_cap: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            workers: 0,
            watermark: crate::session::DEFAULT_WATERMARK,
            hard_cap: crate::session::DEFAULT_HARD_CAP,
            inflight_cap: crate::session::DEFAULT_INFLIGHT_CAP,
        }
    }
}

struct Registration {
    stream: TcpStream,
    handler: Box<dyn SessionHandler>,
    shared: Arc<SessionShared>,
}

/// Registers dialer-established connections with a running reactor.
#[derive(Clone)]
pub struct ReactorHandle {
    reg_tx: Sender<Registration>,
    cfg: ReactorConfig,
}

impl ReactorHandle {
    /// Hands an established (post-hello) connection to the reactor, already
    /// `Open` with `handler` attached. Returns the session's handle; if the
    /// reactor is gone the handle is born closed and `on_close` has run.
    pub fn register(&self, stream: TcpStream, handler: Box<dyn SessionHandler>) -> SessionHandle {
        let shared = Arc::new(new_shared(&self.cfg));
        let handle = SessionHandle { shared: shared.clone() };
        if let Err(std::sync::mpsc::SendError(reg)) =
            self.reg_tx.send(Registration { stream, handler, shared })
        {
            let mut handler = reg.handler;
            handle.close();
            handler.on_close();
        }
        handle
    }
}

fn new_shared(cfg: &ReactorConfig) -> SessionShared {
    SessionShared {
        out: Mutex::new(OutBuf::new(cfg.watermark, cfg.hard_cap)),
        state: AtomicU8::new(STATE_OPEN),
        inflight: AtomicUsize::new(0),
        inflight_cap: cfg.inflight_cap.max(1),
    }
}

enum Phase {
    /// Waiting for the hello frame; dies at `deadline` without one.
    Handshake { deadline: Instant },
    /// Handler attached; frames dispatch to the pinned worker.
    Open,
}

struct Slot {
    stream: TcpStream,
    assembler: FrameAssembler,
    phase: Phase,
    handler: Option<Arc<Mutex<Box<dyn SessionHandler>>>>,
    shared: Arc<SessionShared>,
    handle: SessionHandle,
    /// Worker pinning: `session_id % workers`.
    session_id: u64,
    /// Edge detector for the backpressure flight-recorder event: set while
    /// reads are paused so only the pause *transition* is recorded.
    was_paused: bool,
}

struct WorkItem {
    shared: Arc<SessionShared>,
    handler: Arc<Mutex<Box<dyn SessionHandler>>>,
    handle: SessionHandle,
    tag: u8,
    body: Vec<u8>,
}

/// Spawns the reactor (and its worker pool) over `listener`. The returned
/// handle registers dialer-established sessions. Threads are detached; they
/// live until the process exits, like the listener threads they replace.
pub fn spawn(listener: TcpListener, acceptor: Acceptor, cfg: ReactorConfig) -> ReactorHandle {
    let (reg_tx, reg_rx) = channel();
    let handle = ReactorHandle { reg_tx, cfg };
    let workers: Vec<Sender<WorkItem>> = (0..cfg.workers)
        .map(|_| {
            let (tx, rx) = channel::<WorkItem>();
            std::thread::spawn(move || worker_loop(rx));
            tx
        })
        .collect();
    std::thread::spawn(move || reactor_loop(listener, acceptor, cfg, reg_rx, workers));
    handle
}

fn worker_loop(rx: Receiver<WorkItem>) {
    while let Ok(item) = rx.recv() {
        process_item(item);
    }
}

fn process_item(item: WorkItem) {
    // A condemned session's queued frames are skipped — the handler may
    // already have seen `on_close`.
    if item.shared.state() != STATE_CLOSED {
        let control = item.handler.lock().unwrap().on_frame(item.tag, item.body, &item.handle);
        match control {
            Control::Continue => {}
            Control::Close => item.shared.request_close(),
            Control::CloseAfterFlush => item.shared.request_drain(),
        }
    }
    item.shared.inflight.fetch_sub(1, Ordering::AcqRel);
}

fn reactor_loop(
    listener: TcpListener,
    mut acceptor: Acceptor,
    cfg: ReactorConfig,
    reg_rx: Receiver<Registration>,
    workers: Vec<Sender<WorkItem>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let sessions_gauge = metrics::global()
        .gauge("snoopy_net_open_sessions", "sessions currently registered with the reactor");
    let mut sessions: Vec<Slot> = Vec::new();
    let mut next_id = 0u64;
    let mut registrations_open = true;
    loop {
        let mut progress = false;

        // Accept until the backlog is dry.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::new(new_shared(&cfg));
                    let handle = SessionHandle { shared: shared.clone() };
                    sessions.push(Slot {
                        stream,
                        assembler: FrameAssembler::new(),
                        phase: Phase::Handshake { deadline: Instant::now() + HELLO_TIMEOUT },
                        handler: None,
                        shared,
                        handle,
                        session_id: next_id,
                        was_paused: false,
                    });
                    events::record(
                        Event::new(EventKind::NetAccept)
                            .with("session", Public::wire_observable(next_id)),
                    );
                    next_id += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE under load): back off a
                // sweep rather than spinning.
                Err(_) => break,
            }
        }

        // Pick up dialer-established sessions.
        while registrations_open {
            match reg_rx.try_recv() {
                Ok(reg) => {
                    progress = true;
                    if reg.stream.set_nonblocking(true).is_err() {
                        reg.shared.request_close();
                        let mut h = reg.handler;
                        h.on_close();
                        continue;
                    }
                    let _ = reg.stream.set_nodelay(true);
                    let handle = SessionHandle { shared: reg.shared.clone() };
                    sessions.push(Slot {
                        stream: reg.stream,
                        assembler: FrameAssembler::new(),
                        phase: Phase::Open,
                        handler: Some(Arc::new(Mutex::new(reg.handler))),
                        shared: reg.shared,
                        handle,
                        session_id: next_id,
                        was_paused: false,
                    });
                    next_id += 1;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    registrations_open = false;
                }
            }
        }

        // Sweep every session.
        let now = Instant::now();
        sessions.retain_mut(|slot| match sweep(slot, now, &mut acceptor, &workers) {
            Sweep::Alive { moved } => {
                progress |= moved;
                true
            }
            Sweep::Dead => {
                slot.shared.request_close();
                let _ = slot.stream.shutdown(Shutdown::Both);
                if let Some(handler) = &slot.handler {
                    handler.lock().unwrap().on_close();
                }
                events::record(
                    Event::new(EventKind::NetClose)
                        .with("session", Public::wire_observable(slot.session_id)),
                );
                progress = true;
                false
            }
        });
        sessions_gauge.set(Public::wire_observable(sessions.len() as f64));

        if !progress {
            std::thread::sleep(IDLE_PARK);
        }
    }
}

enum Sweep {
    Alive { moved: bool },
    Dead,
}

fn sweep(
    slot: &mut Slot,
    now: Instant,
    acceptor: &mut Acceptor,
    workers: &[Sender<WorkItem>],
) -> Sweep {
    if slot.shared.state() == STATE_CLOSED {
        return Sweep::Dead;
    }

    // Write sweep: only the reactor touches the socket, so partial writes
    // resume exactly where they stopped.
    let wrote = {
        let mut out = slot.shared.out.lock().unwrap();
        match out.drain_into(&mut slot.stream) {
            Ok(n) => n,
            Err(_) => return Sweep::Dead,
        }
    };

    let state = slot.shared.state();
    if state == STATE_CLOSED {
        return Sweep::Dead;
    }
    if state == STATE_DRAINING {
        let drained = slot.shared.out.lock().unwrap().is_empty()
            && slot.shared.inflight.load(Ordering::Acquire) == 0;
        if drained {
            if let Some(handler) = &slot.handler {
                handler.lock().unwrap().on_drained();
            }
            return Sweep::Dead;
        }
        return Sweep::Alive { moved: wrote > 0 };
    }

    // Read sweep, unless backpressure has us paused.
    let paused = slot.shared.inflight.load(Ordering::Acquire) >= slot.shared.inflight_cap
        || slot.shared.out.lock().unwrap().over_watermark();
    if paused {
        if !slot.was_paused {
            slot.was_paused = true;
            events::record(
                Event::new(EventKind::NetBackpressure)
                    .with("session", Public::wire_observable(slot.session_id)),
            );
        }
        return Sweep::Alive { moved: wrote > 0 };
    }
    slot.was_paused = false;

    let (frames, eof) = match slot.assembler.read_from(&mut slot.stream, READ_BUDGET) {
        Ok(ReadStep::Frames(f)) => (f, false),
        Ok(ReadStep::Eof(f)) => (f, true),
        Err(_) => return Sweep::Dead,
    };
    let moved = wrote > 0 || !frames.is_empty();

    let mut frames = frames.into_iter();
    if let Phase::Handshake { deadline } = slot.phase {
        match frames.next() {
            Some((t, body)) => {
                if t != tag::HELLO {
                    return Sweep::Dead;
                }
                let Some(hello) = Hello::decode(&body) else { return Sweep::Dead };
                let Some(handler) = acceptor(hello, &slot.handle) else { return Sweep::Dead };
                slot.handler = Some(Arc::new(Mutex::new(handler)));
                slot.phase = Phase::Open;
            }
            None if now >= deadline => return Sweep::Dead,
            None => {
                if eof {
                    return Sweep::Dead;
                }
                return Sweep::Alive { moved };
            }
        }
    }

    // Dispatch the remaining frames to the pinned worker (or inline).
    let handler = slot.handler.as_ref().expect("open sessions have handlers");
    for (t, body) in frames {
        slot.shared.inflight.fetch_add(1, Ordering::AcqRel);
        let item = WorkItem {
            shared: slot.shared.clone(),
            handler: handler.clone(),
            handle: slot.handle.clone(),
            tag: t,
            body,
        };
        if workers.is_empty() {
            process_item(item);
        } else {
            let w = (slot.session_id as usize) % workers.len();
            if workers[w].send(item).is_err() {
                return Sweep::Dead;
            }
        }
    }

    if slot.shared.state() == STATE_CLOSED {
        return Sweep::Dead;
    }
    if eof {
        // Half-close: the peer is done sending. Flush what we owe, then
        // close (via the draining path so `on_drained` still runs).
        slot.shared.request_drain();
    }
    Sweep::Alive { moved }
}
