//! Elastic resharding over TCP: grow or shrink the subORAM fleet at an
//! epoch boundary, live.
//!
//! The driver ([`reshard_cluster`], surfaced as `snoopyd reshard`) runs the
//! protocol the in-process plane pioneered (`snoopy_core::deploy`), against
//! real daemons over the admin RPC plane:
//!
//! 1. **Plan** — every balancer arms a [`ReshardPlan`]
//!    (generation, new fleet size, pause TTL) and pauses at its next owned
//!    epoch tick. Paused means: the tick is held, clients keep buffering
//!    into the next epoch, and nothing is in flight to any subORAM.
//! 2. **Export** — each active subORAM ships its full partition back as
//!    sealed migration batches on the *public schedule* (below).
//! 3. **Install** — the driver re-partitions the union with the deployment's
//!    keyed hash at the new fleet size and ships each new partition out,
//!    again on the public schedule. SubORAMs stage the new partition beside
//!    the live one (the disk tier under a generation-named directory with a
//!    generation-derived key).
//! 4. **Commit** — subORAMs first: each swaps the staged partition in,
//!    commits storage, and re-checkpoints under the new generation *before*
//!    acknowledging — crash/replay recovers into exactly one of {old, new}.
//!    Then every balancer flips its routing table and executes the held
//!    tick at the new layout. Any failure before the first subORAM commit
//!    aborts everywhere and the old layout resumes (the pause TTL guarantees
//!    this even if the driver itself dies); a failure after it is repaired
//!    by re-running the driver (roll forward).
//!
//! **Leakage.** The reconfiguration event is public by design — fleet sizes
//! are wire-observable configuration. What must *not* leak is anything about
//! the stored data: following Cloak's fixed-temporal-distribution argument,
//! every per-node transfer has the same shape regardless of contents —
//! exactly [`migration_batches`]`(num_objects)` AEAD-sealed batches of
//! exactly [`MIGRATION_BATCH_OBJECTS`] fixed-size object slots, padded with
//! dummy ids from the reserved namespace. The network sees the same byte
//! counts and cadence whether a partition is empty or holds every object.

use crate::frame::{read_frame, write_frame};
use crate::manifest::Manifest;
use crate::proto::{self, tag, Hello, Role};
use snoopy_core::transport::{
    LbEvent, ReshardCmd, ReshardPhase, ReshardPlan, ReshardStatus, SubEvent, SubReshardCmd,
    SubReshardReply,
};
use snoopy_crypto::aead::{AeadKey, Nonce, SealedBox};
use snoopy_crypto::rng::Rng;
use snoopy_crypto::{Key256, Prg};
use snoopy_enclave::wire::{StoredObject, REAL_ID_LIMIT};
use snoopy_lb::partition_objects;
use snoopy_telemetry::events::{self, Event, EventKind};
use snoopy_telemetry::{metrics, Public};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

/// Reshard command bytes (the `cmd` field of a [`ReshardReq`]).
pub mod cmd {
    /// Report status; changes nothing. Valid for both roles.
    pub const STATUS: u8 = 0;
    /// Balancer: arm a plan (generation, new_s, boundary, TTL).
    pub const PLAN: u8 = 1;
    /// Both roles: commit the armed/staged layout.
    pub const COMMIT: u8 = 2;
    /// Both roles: drop the armed/staged layout; old layout stays live.
    pub const ABORT: u8 = 3;
    /// SubORAM: export the partition as sealed batches on the schedule.
    pub const EXPORT: u8 = 4;
    /// SubORAM: one staged-partition batch (idx/count in `arg1`/`arg2`).
    pub const INSTALL: u8 = 5;
}

/// Reshard reply kinds (the `kind` field of a [`ReshardResp`]).
pub mod resp {
    /// A [`snoopy_core::transport::ReshardStatus`] snapshot.
    pub const STATUS: u8 = 0;
    /// One sealed export batch (idx/count in `batch_idx`/`n_batches`).
    pub const EXPORT: u8 = 1;
    /// The command was refused; payload is a UTF-8 reason. The live layout
    /// is untouched.
    pub const FAILED: u8 = 2;
}

/// Migration direction tags (fold into the sealing nonce so export and
/// install batches can never be confused for each other).
const DIR_EXPORT: u8 = 0;
const DIR_INSTALL: u8 = 1;

/// Object slots per sealed migration batch. Public protocol constant: with
/// [`migration_batches`] it fully determines the transfer shape.
pub const MIGRATION_BATCH_OBJECTS: usize = 64;

/// Sealed batches each node sends (export) and receives (install) per
/// migration — a *public* function of the deployment's object count alone.
/// Any partition fits: even after a shrink to S=1 a partition holds at most
/// `num_objects` objects.
pub fn migration_batches(num_objects: u64) -> u64 {
    num_objects.div_ceil(MIGRATION_BATCH_OBJECTS as u64).max(1)
}

/// The migration sealing key for one driver run: per generation *and* per
/// random run id, so an aborted run retried under the same generation never
/// reuses a `(key, nonce)` pair.
pub fn migration_key(deploy: &Key256, generation: u64, run: u64) -> Key256 {
    deploy.derive(b"reshard-migration").derive(&generation.to_le_bytes()).derive(&run.to_le_bytes())
}

/// Distinct node indices the migration nonce layout can address: the nonce
/// prefix holds the index in 16 bits, so a fleet past this bound would make
/// two subORAMs share AEAD nonce sequences under the same per-run key.
/// Enforced at manifest validation and (belt and braces) by
/// [`seal_migration`]/[`open_migration`].
pub const MAX_MIGRATION_NODES: u64 = 1 << 16;

fn mig_nonce(dir: u8, node: u64, idx: u64) -> Nonce {
    debug_assert!(node < MAX_MIGRATION_NODES);
    Nonce::from_parts(0x5E00_0000 | ((dir as u32) << 16) | (node as u32 & 0xFFFF), idx)
}

/// Rejects a node index the 16-bit nonce field would truncate (and alias).
fn check_mig_node(node: u64) -> io::Result<()> {
    if node >= MAX_MIGRATION_NODES {
        return Err(bad(format!(
            "node index {node} overflows the {MAX_MIGRATION_NODES}-node migration \
             nonce namespace"
        )));
    }
    Ok(())
}

fn mig_aad(generation: u64, new_s: u64) -> Vec<u8> {
    let mut aad = b"snoopy-reshard".to_vec();
    aad.extend_from_slice(&generation.to_le_bytes());
    aad.extend_from_slice(&new_s.to_le_bytes());
    aad
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("reshard: {}", msg.into()))
}

/// The public addressing context for one node's migration stream — every
/// field besides the batch index that keys, nonces, and authenticates its
/// sealed batches. All of it is public protocol state.
#[derive(Clone, Copy, Debug)]
pub struct MigrationCtx<'a> {
    /// The per-(generation, run) migration key from [`migration_key`].
    pub key: &'a Key256,
    /// [`DIR_EXPORT`] or [`DIR_INSTALL`]; folded into the nonce so the two
    /// directions never share a sequence.
    pub dir: u8,
    /// SubORAM index the stream belongs to.
    pub node: u64,
    /// Generation being staged (authenticated via AAD).
    pub generation: u64,
    /// Target fleet size (authenticated via AAD).
    pub new_s: u64,
    /// The deployment's fixed value length.
    pub value_len: usize,
}

/// Seals `objects` into the full public schedule for one node: exactly
/// [`migration_batches`]`(num_objects)` batches of exactly
/// [`MIGRATION_BATCH_OBJECTS`] slots, real objects first, dummy slots (ids
/// in the reserved `>= REAL_ID_LIMIT` namespace, zero values) after. The
/// sealed byte stream is the same length for an empty partition and a full
/// one.
pub fn seal_migration(
    ctx: &MigrationCtx<'_>,
    objects: &[StoredObject],
    num_objects: u64,
) -> io::Result<Vec<SealedBox>> {
    let &MigrationCtx { key, dir, node, generation, new_s, value_len } = ctx;
    check_mig_node(node)?;
    let n_batches = migration_batches(num_objects);
    let capacity = n_batches as usize * MIGRATION_BATCH_OBJECTS;
    if objects.len() > capacity {
        return Err(bad(format!(
            "partition of {} objects exceeds the public schedule capacity {capacity}",
            objects.len()
        )));
    }
    let aead = AeadKey::new(key.clone());
    let aad = mig_aad(generation, new_s);
    let mut out = Vec::with_capacity(n_batches as usize);
    for idx in 0..n_batches {
        let mut plain = Vec::with_capacity(MIGRATION_BATCH_OBJECTS * (8 + value_len));
        for slot in 0..MIGRATION_BATCH_OBJECTS {
            let pos = idx as usize * MIGRATION_BATCH_OBJECTS + slot;
            match objects.get(pos) {
                Some(o) => {
                    if o.value.len() != value_len {
                        return Err(bad("object value length disagrees with deployment"));
                    }
                    plain.extend_from_slice(&o.id.to_le_bytes());
                    plain.extend_from_slice(&o.value);
                }
                None => {
                    plain.extend_from_slice(&REAL_ID_LIMIT.to_le_bytes());
                    plain.extend_from_slice(&vec![0u8; value_len]);
                }
            }
        }
        out.push(aead.seal(mig_nonce(dir, node, idx), &aad, &plain));
    }
    Ok(out)
}

/// Opens one sealed migration batch and returns its *real* objects (dummy
/// slots from the reserved id namespace are dropped).
pub fn open_migration(
    ctx: &MigrationCtx<'_>,
    idx: u64,
    sealed: &SealedBox,
) -> io::Result<Vec<StoredObject>> {
    let &MigrationCtx { key, dir, node, generation, new_s, value_len } = ctx;
    check_mig_node(node)?;
    let plain = AeadKey::new(key.clone())
        .open(mig_nonce(dir, node, idx), &mig_aad(generation, new_s), sealed)
        .map_err(|_| bad("migration batch failed authentication"))?;
    let slot_len = 8 + value_len;
    if plain.len() != MIGRATION_BATCH_OBJECTS * slot_len {
        return Err(bad("migration batch has the wrong shape"));
    }
    let mut objects = Vec::new();
    for slot in plain.chunks_exact(slot_len) {
        let id = u64::from_le_bytes(slot[..8].try_into().unwrap());
        if id < REAL_ID_LIMIT {
            objects.push(StoredObject { id, value: slot[8..].to_vec() });
        }
    }
    Ok(objects)
}

/// One reshard command frame (the body of a [`tag::RESHARD_REQ`]). The
/// header is plaintext — every field is public protocol state — and the
/// payload (install batches) is sealed under the migration key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReshardReq {
    /// A [`cmd`] byte.
    pub cmd: u8,
    /// Plan/staged generation the command addresses.
    pub generation: u64,
    /// The target fleet size (PLAN, EXPORT, INSTALL; 0 otherwise).
    pub new_s: u64,
    /// PLAN: first wall boundary (0 = next tick). INSTALL: batch index.
    pub arg1: u64,
    /// PLAN: pause TTL in ms. INSTALL: total batches on the schedule.
    pub arg2: u64,
    /// Random per-driver-run id; keys the migration seal so a retried run
    /// never reuses a nonce sequence.
    pub run: u64,
    /// Sealed migration batch (INSTALL) or empty.
    pub payload: Vec<u8>,
}

impl ReshardReq {
    /// Serializes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(41 + self.payload.len());
        out.push(self.cmd);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.new_s.to_le_bytes());
        out.extend_from_slice(&self.arg1.to_le_bytes());
        out.extend_from_slice(&self.arg2.to_le_bytes());
        out.extend_from_slice(&self.run.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a request body.
    pub fn decode(body: &[u8]) -> Option<ReshardReq> {
        if body.len() < 41 {
            return None;
        }
        Some(ReshardReq {
            cmd: body[0],
            generation: u64::from_le_bytes(body[1..9].try_into().ok()?),
            new_s: u64::from_le_bytes(body[9..17].try_into().ok()?),
            arg1: u64::from_le_bytes(body[17..25].try_into().ok()?),
            arg2: u64::from_le_bytes(body[25..33].try_into().ok()?),
            run: u64::from_le_bytes(body[33..41].try_into().ok()?),
            payload: body[41..].to_vec(),
        })
    }
}

/// One reshard reply frame (the body of a [`tag::RESHARD_RESP`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReshardResp {
    /// A [`resp`] kind byte.
    pub kind: u8,
    /// The node's current (STATUS) or addressed (EXPORT) generation.
    pub generation: u64,
    /// The node's active fleet size (STATUS; 0 otherwise).
    pub active_s: u64,
    /// Encoded [`ReshardPhase`] (STATUS; 0 otherwise).
    pub phase: u8,
    /// EXPORT: this batch's index on the schedule.
    pub batch_idx: u64,
    /// EXPORT: total batches on the schedule.
    pub n_batches: u64,
    /// Sealed export batch (EXPORT) or UTF-8 reason (FAILED) or empty.
    pub payload: Vec<u8>,
}

impl ReshardResp {
    /// Serializes the reply body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.payload.len());
        out.push(self.kind);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.active_s.to_le_bytes());
        out.push(self.phase);
        out.extend_from_slice(&self.batch_idx.to_le_bytes());
        out.extend_from_slice(&self.n_batches.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a reply body.
    pub fn decode(body: &[u8]) -> Option<ReshardResp> {
        if body.len() < 34 {
            return None;
        }
        Some(ReshardResp {
            kind: body[0],
            generation: u64::from_le_bytes(body[1..9].try_into().ok()?),
            active_s: u64::from_le_bytes(body[9..17].try_into().ok()?),
            phase: body[17],
            batch_idx: u64::from_le_bytes(body[18..26].try_into().ok()?),
            n_batches: u64::from_le_bytes(body[26..34].try_into().ok()?),
            payload: body[34..].to_vec(),
        })
    }

    /// The decoded status, if this is a STATUS reply.
    pub fn status(&self) -> Option<ReshardStatus> {
        if self.kind != resp::STATUS {
            return None;
        }
        Some(ReshardStatus {
            generation: self.generation,
            active_s: self.active_s as usize,
            phase: decode_phase(self.phase)?,
        })
    }

    /// The refusal reason, if this is a FAILED reply.
    pub fn reason(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

fn encode_phase(p: ReshardPhase) -> u8 {
    match p {
        ReshardPhase::Idle => 0,
        ReshardPhase::Armed => 1,
        ReshardPhase::Paused => 2,
    }
}

fn decode_phase(b: u8) -> Option<ReshardPhase> {
    match b {
        0 => Some(ReshardPhase::Idle),
        1 => Some(ReshardPhase::Armed),
        2 => Some(ReshardPhase::Paused),
        _ => None,
    }
}

/// Builds a STATUS reply from a node's status.
pub(crate) fn status_resp(st: &ReshardStatus) -> ReshardResp {
    ReshardResp {
        kind: resp::STATUS,
        generation: st.generation,
        active_s: st.active_s as u64,
        phase: encode_phase(st.phase),
        batch_idx: 0,
        n_batches: 0,
        payload: Vec::new(),
    }
}

/// Builds a FAILED reply.
pub(crate) fn failed_resp(reason: impl Into<String>) -> ReshardResp {
    ReshardResp {
        kind: resp::FAILED,
        generation: 0,
        active_s: 0,
        phase: 0,
        batch_idx: 0,
        n_batches: 0,
        payload: reason.into().into_bytes(),
    }
}

/// The per-admin-session reshard frame handler a daemon installs on its
/// [`crate::suboram_daemon::AdminHandler`]. Returns the reply frames to
/// send (possibly none: install batches only answer on schedule
/// completion).
pub(crate) type RpcHandler = Box<dyn FnMut(ReshardReq) -> Vec<ReshardResp> + Send>;

/// How long an admin-session handler waits for the epoch loop to answer a
/// control command before giving up (the loop may be finishing an epoch).
const LOOP_REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Reason prefix on FAILED replies that are *not* authoritative refusals:
/// the admin handler stopped waiting on the epoch loop, but the command is
/// still queued and may yet apply (e.g. a commit whose checkpoint persist
/// outlives the wait). Drivers must treat such a reply like a lost ack —
/// probe the node's status — never like a refusal that justifies aborting.
pub(crate) const REASON_INDETERMINATE: &str = "indeterminate: ";

/// Records a committed layout flip: both reshard gauges plus the flight-
/// recorder event. Generation and fleet size are public configuration.
fn record_flip(generation: u64, active_s: usize) {
    let reg = metrics::global();
    reg.gauge("snoopy_reshard_generation", "reshard generation of the layout currently served")
        .set(Public::config(generation as f64));
    reg.gauge("snoopy_active_suborams", "subORAM count of the layout currently served")
        .set(Public::config(active_s as f64));
    events::record(
        Event::new(EventKind::ReshardCommit)
            .with("generation", Public::config(generation))
            .with("suborams", Public::config(active_s as u64)),
    );
}

fn record_abort(generation: u64) {
    events::record(
        Event::new(EventKind::ReshardAbort).with("generation", Public::config(generation)),
    );
}

/// Builds the reshard frame handler for a *balancer* daemon: each command
/// round-trips through the epoch loop (which alone owns the routing table)
/// as an [`LbEvent::Reshard`].
pub(crate) fn lb_rpc_handler(events_tx: Sender<LbEvent>) -> RpcHandler {
    Box::new(move |req: ReshardReq| {
        let core_cmd = match req.cmd {
            cmd::STATUS => ReshardCmd::Status,
            cmd::PLAN => ReshardCmd::Plan(ReshardPlan {
                generation: req.generation,
                new_s: req.new_s as usize,
                boundary_epoch: req.arg1,
                ttl: Duration::from_millis(req.arg2.max(1)),
            }),
            cmd::COMMIT => ReshardCmd::Commit { generation: req.generation },
            cmd::ABORT => ReshardCmd::Abort { generation: req.generation },
            _ => return vec![failed_resp("balancers neither export nor install partitions")],
        };
        let (tx, rx) = std::sync::mpsc::channel();
        if events_tx.send(LbEvent::Reshard { cmd: core_cmd, reply: tx }).is_err() {
            return vec![failed_resp("balancer loop is gone")];
        }
        match rx.recv_timeout(LOOP_REPLY_TIMEOUT) {
            Ok(st) => {
                if req.cmd == cmd::COMMIT && st.generation == req.generation {
                    record_flip(st.generation, st.active_s);
                } else if req.cmd == cmd::ABORT {
                    record_abort(req.generation);
                }
                vec![status_resp(&st)]
            }
            Err(_) => vec![failed_resp(format!("{REASON_INDETERMINATE}balancer loop did not answer"))],
        }
    })
}

/// Everything the subORAM daemon's reshard handler needs beyond the frame.
pub(crate) struct SubReshardCtx {
    /// Channel into the epoch loop.
    pub events_tx: Sender<SubEvent>,
    /// Deployment key (migration batches seal under a key derived from it).
    pub deploy: Key256,
    /// The deployment's object value length.
    pub value_len: usize,
    /// The deployment's total object count — fixes the public schedule.
    pub num_objects: u64,
    /// This subORAM's index.
    pub index: usize,
}

/// An install schedule in flight on one admin session: batches accumulate
/// here and hit the epoch loop as a single `Install` once complete.
struct PendingInstall {
    generation: u64,
    run: u64,
    new_s: u64,
    next_idx: u64,
    objects: Vec<StoredObject>,
}

/// Builds the reshard frame handler for a *subORAM* daemon: seals/opens the
/// migration batches at the session edge and round-trips the staging
/// commands through the epoch loop (which alone owns the partition) as
/// [`SubEvent::Reshard`]s.
pub(crate) fn sub_rpc_handler(ctx: SubReshardCtx) -> RpcHandler {
    let mut pending: Option<PendingInstall> = None;
    Box::new(move |req: ReshardReq| {
        let round_trip = |cmd: SubReshardCmd| -> Result<SubReshardReply, ReshardResp> {
            let (tx, rx) = std::sync::mpsc::channel();
            if ctx.events_tx.send(SubEvent::Reshard { cmd, reply: tx }).is_err() {
                return Err(failed_resp("suboram loop is gone"));
            }
            rx.recv_timeout(LOOP_REPLY_TIMEOUT)
                .map_err(|_| failed_resp(format!("{REASON_INDETERMINATE}suboram loop did not answer")))
        };
        let reply_of = |r: Result<SubReshardReply, ReshardResp>| match r {
            Ok(SubReshardReply::Status(st)) => status_resp(&st),
            Ok(SubReshardReply::Failed(reason)) => failed_resp(reason),
            Ok(SubReshardReply::Objects(_)) => failed_resp("unexpected object reply"),
            Err(resp) => resp,
        };
        match req.cmd {
            cmd::STATUS => vec![reply_of(round_trip(SubReshardCmd::Status))],
            cmd::EXPORT => {
                let objects = match round_trip(SubReshardCmd::Export) {
                    Ok(SubReshardReply::Objects(objects)) => objects,
                    Ok(SubReshardReply::Failed(reason)) => return vec![failed_resp(reason)],
                    Ok(SubReshardReply::Status(_)) => {
                        return vec![failed_resp("export did not return objects")]
                    }
                    Err(resp) => return vec![resp],
                };
                let mig = migration_key(&ctx.deploy, req.generation, req.run);
                let mctx = MigrationCtx {
                    key: &mig,
                    dir: DIR_EXPORT,
                    node: ctx.index as u64,
                    generation: req.generation,
                    new_s: req.new_s,
                    value_len: ctx.value_len,
                };
                match seal_migration(&mctx, &objects, ctx.num_objects) {
                    Ok(sealed) => {
                        let n = sealed.len() as u64;
                        sealed
                            .into_iter()
                            .enumerate()
                            .map(|(i, s)| ReshardResp {
                                kind: resp::EXPORT,
                                generation: req.generation,
                                active_s: 0,
                                phase: 0,
                                batch_idx: i as u64,
                                n_batches: n,
                                payload: s.bytes,
                            })
                            .collect()
                    }
                    Err(e) => vec![failed_resp(e.to_string())],
                }
            }
            cmd::INSTALL => {
                let n_batches = migration_batches(ctx.num_objects);
                if req.arg2 != n_batches {
                    return vec![failed_resp("install schedule disagrees with the deployment")];
                }
                if req.arg1 == 0 {
                    pending = Some(PendingInstall {
                        generation: req.generation,
                        run: req.run,
                        new_s: req.new_s,
                        next_idx: 0,
                        objects: Vec::new(),
                    });
                }
                let stale = pending.as_ref().is_none_or(|p| {
                    p.generation != req.generation
                        || p.run != req.run
                        || p.new_s != req.new_s
                        || p.next_idx != req.arg1
                });
                if stale {
                    pending = None;
                    return vec![failed_resp("install batch out of sequence")];
                }
                let mig = migration_key(&ctx.deploy, req.generation, req.run);
                let mctx = MigrationCtx {
                    key: &mig,
                    dir: DIR_INSTALL,
                    node: ctx.index as u64,
                    generation: req.generation,
                    new_s: req.new_s,
                    value_len: ctx.value_len,
                };
                let opened =
                    open_migration(&mctx, req.arg1, &SealedBox { bytes: req.payload.clone() });
                let p = pending.as_mut().expect("checked above");
                match opened {
                    Ok(objects) => {
                        p.objects.extend(objects);
                        p.next_idx += 1;
                    }
                    Err(e) => {
                        pending = None;
                        return vec![failed_resp(e.to_string())];
                    }
                }
                if p.next_idx < n_batches {
                    // Mid-schedule: no reply until the last batch lands, so
                    // the driver gets exactly one verdict per schedule.
                    return Vec::new();
                }
                let done = pending.take().expect("checked above");
                vec![reply_of(round_trip(SubReshardCmd::Install {
                    generation: done.generation,
                    new_s: done.new_s as usize,
                    objects: done.objects,
                }))]
            }
            cmd::COMMIT => {
                let r = round_trip(SubReshardCmd::Commit { generation: req.generation });
                if let Ok(SubReshardReply::Status(st)) = &r {
                    if st.generation == req.generation {
                        record_flip(st.generation, st.active_s);
                    }
                }
                vec![reply_of(r)]
            }
            cmd::ABORT => {
                pending = None;
                let r = round_trip(SubReshardCmd::Abort { generation: req.generation });
                if r.is_ok() {
                    record_abort(req.generation);
                }
                vec![reply_of(r)]
            }
            _ => vec![failed_resp("unknown reshard command")],
        }
    })
}

/// Dials `addr` as an admin, sends every request frame, and reads replies
/// until the response is complete (a lone STATUS/FAILED frame, or a full
/// export schedule).
pub(crate) fn reshard_rpc(
    addr: &str,
    reqs: &[ReshardReq],
    timeout: Duration,
) -> io::Result<Vec<ReshardResp>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    write_frame(&mut stream, tag::HELLO, &Hello::new(Role::Admin, 0).encode())?;
    for req in reqs {
        write_frame(&mut stream, tag::RESHARD_REQ, &req.encode())?;
    }
    let mut out: Vec<ReshardResp> = Vec::new();
    loop {
        let (t, body) = read_frame(&mut stream)?;
        if t != tag::RESHARD_RESP {
            return Err(bad("unexpected frame from daemon"));
        }
        let r = ReshardResp::decode(&body).ok_or_else(|| bad("malformed reply"))?;
        let want = if r.kind == resp::EXPORT { r.n_batches.max(1) } else { 1 };
        out.push(r);
        if out.len() as u64 >= want {
            return Ok(out);
        }
    }
}

fn single_rpc(addr: &str, req: ReshardReq, timeout: Duration) -> io::Result<ReshardResp> {
    let mut resps = reshard_rpc(addr, &[req], timeout)?;
    resps.pop().ok_or_else(|| bad("empty reply"))
}

fn status_req() -> ReshardReq {
    ReshardReq {
        cmd: cmd::STATUS,
        generation: 0,
        new_s: 0,
        arg1: 0,
        arg2: 0,
        run: 0,
        payload: Vec::new(),
    }
}

fn status_of(addr: &str, timeout: Duration) -> io::Result<ReshardStatus> {
    let r = single_rpc(addr, status_req(), timeout)?;
    r.status().ok_or_else(|| bad(format!("status refused: {}", r.reason())))
}

/// Probes every subORAM for its committed layout and returns the one of the
/// highest generation, or `None` if no node has ever resharded (or none
/// answered). Balancers call this at boot: they are stateless, so after a
/// restart the durable side of the cluster — the subORAM checkpoints — is
/// the authority on which layout is live.
pub fn probe_layout(m: &Manifest, timeout: Duration) -> Option<(u64, usize)> {
    probe_layout_once(m, timeout).1
}

/// One probe sweep over the subORAM fleet: how many nodes answered at all,
/// plus the highest committed layout any answering node reported. The count
/// lets a caller distinguish "a node answered and nothing ever resharded"
/// (the manifest layout is authoritative) from "nobody answered" (the fleet
/// may be mid-recovery and the caller should retry before trusting the
/// manifest).
pub fn probe_layout_once(m: &Manifest, timeout: Duration) -> (usize, Option<(u64, usize)>) {
    let mut answered = 0usize;
    let mut best: Option<(u64, usize)> = None;
    for addr in &m.suborams {
        if let Ok(st) = status_of(addr, timeout) {
            answered += 1;
            if st.generation > 0 && st.active_s > 0 && best.is_none_or(|(g, _)| st.generation > g) {
                best = Some((st.generation, st.active_s));
            }
        }
    }
    (answered, best)
}

/// A [`ReshardOptions::phase_hook`] callback.
pub type PhaseHook = Box<dyn FnMut(&str) + Send>;

/// Tuning for one [`reshard_cluster`] run.
pub struct ReshardOptions {
    /// How long balancers stay paused with no verdict before self-aborting
    /// back to the old layout (the driver died mid-migration).
    pub ttl: Duration,
    /// Per-RPC read timeout (export/install of a large store can be slow).
    pub rpc_timeout: Duration,
    /// How long to wait for every balancer to reach its boundary tick.
    pub pause_deadline: Duration,
    /// Test hook: called with a phase name (`"paused"`, `"exported"`,
    /// `"installed"`, `"committed-suborams"`, `"committed"`) as the run
    /// crosses it — chaos tests kill daemons from here.
    pub phase_hook: Option<PhaseHook>,
}

impl Default for ReshardOptions {
    fn default() -> ReshardOptions {
        ReshardOptions {
            ttl: Duration::from_secs(30),
            rpc_timeout: Duration::from_secs(30),
            pause_deadline: Duration::from_secs(30),
            phase_hook: None,
        }
    }
}

/// What a committed reshard did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReshardReport {
    /// The generation the cluster now serves.
    pub generation: u64,
    /// Fleet size before.
    pub old_s: usize,
    /// Fleet size after.
    pub new_s: usize,
    /// Real objects migrated (= the deployment's object count).
    pub objects_moved: usize,
    /// Sealed batches shipped in each direction per node — the public
    /// schedule length.
    pub batches_per_node: u64,
}

fn fire(opts: &mut ReshardOptions, phase: &str) {
    if let Some(h) = opts.phase_hook.as_mut() {
        h(phase);
    }
}

/// The driver's reading of one COMMIT RPC. Only [`CommitVerdict::Refused`]
/// — an authoritative in-band answer from the node — may ever trigger an
/// abort; a lost or indeterminate ack yields [`CommitVerdict::Unknown`],
/// which rolls forward (see the commit loop in [`reshard_cluster`]).
enum CommitVerdict {
    /// The node reports the new generation: the flip is durable.
    Flipped,
    /// The node answered in-band that it did not commit.
    Refused(String),
    /// The ack was lost and a follow-up probe could not confirm the flip.
    Unknown(String),
}

/// Classifies the in-band half of a COMMIT reply: `Some(verdict)` when the
/// reply is authoritative, `None` when the ack is indeterminate (a
/// [`REASON_INDETERMINATE`] FAILED) and the node must be probed instead.
fn classify_commit_reply(
    r: &ReshardResp,
    generation: u64,
    want_active: Option<usize>,
) -> Option<CommitVerdict> {
    if let Some(st) = r.status() {
        if st.generation == generation && want_active.is_none_or(|s| st.active_s == s) {
            return Some(CommitVerdict::Flipped);
        }
        // The node executed the command and answered with the old layout:
        // an authoritative in-band refusal.
        return Some(CommitVerdict::Refused(format!("still at generation {}", st.generation)));
    }
    let reason = r.reason();
    if reason.starts_with(REASON_INDETERMINATE) {
        // The command is still queued on the node and may yet apply.
        return None;
    }
    Some(CommitVerdict::Refused(reason))
}

/// Reshards a live cluster to `new_s` subORAMs. See the module docs for the
/// protocol; on any failure before the first subORAM commit the driver
/// aborts everywhere and the old layout resumes. A failure after it returns
/// an error telling the operator to re-run (roll forward): the union export
/// re-collects every object regardless of which layout's bin it sits in, so
/// a repair run converges.
pub fn reshard_cluster(
    m: &Manifest,
    new_s: usize,
    mut opts: ReshardOptions,
) -> io::Result<ReshardReport> {
    let s_total = m.suborams.len();
    if new_s == 0 || new_s > s_total {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("new_s = {new_s} out of range (1..={s_total} provisioned subORAMs)"),
        ));
    }
    // Manifest validation enforces this already; re-check here so a
    // hand-built manifest can never alias migration nonces across nodes.
    check_mig_node(s_total.saturating_sub(1) as u64)?;
    let deploy = proto::deployment_key(m.seed);
    let mut prg = Prg::from_seed(m.seed);
    let shared_key = Key256::random(&mut prg);
    let run: u64 = Prg::from_entropy().gen();
    let t = opts.rpc_timeout;

    // Discover: every provisioned node must answer, and the next generation
    // must exceed anything any node has ever committed or armed.
    let mut max_gen = 0u64;
    let mut sub_status = Vec::with_capacity(s_total);
    for (i, addr) in m.suborams.iter().enumerate() {
        let st = status_of(addr, t)
            .map_err(|e| bad(format!("suboram {i} ({addr}) not answering: {e}")))?;
        max_gen = max_gen.max(st.generation);
        sub_status.push(st);
    }
    for (i, addr) in m.load_balancers.iter().enumerate() {
        let st = status_of(addr, t)
            .map_err(|e| bad(format!("balancer {i} ({addr}) not answering: {e}")))?;
        max_gen = max_gen.max(st.generation);
    }
    let generation = max_gen + 1;
    let old_s = sub_status
        .iter()
        .max_by_key(|s| s.generation)
        .filter(|s| s.active_s > 0)
        .map(|s| s.active_s)
        .unwrap_or_else(|| m.initial_active());
    // A clean cluster has every active node on the same generation. Mixed
    // generations mean a previous run died between subORAM commits (or
    // between subORAMs and balancers): roll forward by exporting from the
    // *whole* provisioned fleet and deduplicating — an object written in
    // either layout's bin is found wherever it landed.
    let roll_forward =
        sub_status[..old_s.min(s_total)].iter().any(|s| s.generation != sub_status[0].generation);
    let export_hi = if roll_forward { s_total } else { old_s };
    let install_hi = if roll_forward { s_total } else { new_s.max(old_s) };
    let n_batches = migration_batches(m.num_objects);
    let mig_key = migration_key(&deploy, generation, run);

    let abort_all = |opts_t: Duration| {
        let abort = |addr: &str| {
            let _ = single_rpc(
                addr,
                ReshardReq {
                    cmd: cmd::ABORT,
                    generation,
                    new_s: 0,
                    arg1: 0,
                    arg2: 0,
                    run,
                    payload: Vec::new(),
                },
                opts_t,
            );
        };
        for addr in &m.load_balancers {
            abort(addr);
        }
        for addr in &m.suborams {
            abort(addr);
        }
    };
    macro_rules! abort_on {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(e) => {
                    abort_all(t);
                    return Err(e);
                }
            }
        };
    }

    // Plan: arm every balancer.
    for (i, addr) in m.load_balancers.iter().enumerate() {
        let r = abort_on!(single_rpc(
            addr,
            ReshardReq {
                cmd: cmd::PLAN,
                generation,
                new_s: new_s as u64,
                arg1: 0,
                arg2: opts.ttl.as_millis() as u64,
                run,
                payload: Vec::new(),
            },
            t,
        ));
        match r.status() {
            Some(st) if st.phase == ReshardPhase::Armed => {}
            _ => {
                abort_all(t);
                return Err(bad(format!("balancer {i} refused the plan: {}", r.reason())));
            }
        }
    }

    // Wait for every balancer to pause at its boundary tick.
    let deadline = Instant::now() + opts.pause_deadline;
    for (i, addr) in m.load_balancers.iter().enumerate() {
        loop {
            let st = abort_on!(status_of(addr, t));
            if st.phase == ReshardPhase::Paused {
                break;
            }
            if Instant::now() > deadline {
                abort_all(t);
                return Err(bad(format!("balancer {i} never paused at the boundary")));
            }
            std::thread::sleep(Duration::from_millis(m.epoch_ms.clamp(1, 50)));
        }
    }
    fire(&mut opts, "paused");

    // Export: the full public schedule from every node that may hold data.
    // Dedup prefers the copy from the higher-generation node (only relevant
    // in a roll-forward, where layouts are mixed).
    let mut by_id: HashMap<u64, (u64, StoredObject)> = HashMap::new();
    for (sub, addr) in m.suborams.iter().enumerate().take(export_hi) {
        let src_gen = sub_status[sub].generation;
        let resps = abort_on!(reshard_rpc(
            addr,
            &[ReshardReq {
                cmd: cmd::EXPORT,
                generation,
                new_s: new_s as u64,
                arg1: 0,
                arg2: 0,
                run,
                payload: Vec::new(),
            }],
            t,
        ));
        if resps.len() as u64 != n_batches || resps.iter().any(|r| r.kind != resp::EXPORT) {
            let reason = resps.iter().find(|r| r.kind == resp::FAILED).map(|r| r.reason());
            abort_all(t);
            return Err(bad(format!(
                "suboram {sub} export failed: {}",
                reason.unwrap_or_else(|| "schedule incomplete".into())
            )));
        }
        let mctx = MigrationCtx {
            key: &mig_key,
            dir: DIR_EXPORT,
            node: sub as u64,
            generation,
            new_s: new_s as u64,
            value_len: m.value_len,
        };
        for r in &resps {
            let objects = abort_on!(open_migration(
                &mctx,
                r.batch_idx,
                &SealedBox { bytes: r.payload.clone() },
            ));
            for o in objects {
                match by_id.get(&o.id) {
                    Some((g, _)) if *g >= src_gen => {}
                    _ => {
                        by_id.insert(o.id, (src_gen, o));
                    }
                }
            }
        }
    }
    let mut union: Vec<StoredObject> = by_id.into_values().map(|(_, o)| o).collect();
    union.sort_by_key(|o| o.id);
    if union.len() as u64 != m.num_objects {
        abort_all(t);
        return Err(bad(format!(
            "export union holds {} objects, deployment stores {} — refusing to migrate",
            union.len(),
            m.num_objects
        )));
    }
    fire(&mut opts, "exported");

    // Re-partition at the new fleet size and install. Nodes past `new_s`
    // get an (equally padded) empty partition: a shrink retires them onto
    // the new generation instead of leaving stale state behind.
    let objects_moved = union.len();
    let mut parts = partition_objects(union, &shared_key, new_s);
    parts.resize_with(install_hi, Vec::new);
    for (sub, addr) in m.suborams.iter().enumerate().take(install_hi) {
        let mctx = MigrationCtx {
            key: &mig_key,
            dir: DIR_INSTALL,
            node: sub as u64,
            generation,
            new_s: new_s as u64,
            value_len: m.value_len,
        };
        let sealed = abort_on!(seal_migration(&mctx, &parts[sub], m.num_objects));
        let reqs: Vec<ReshardReq> = sealed
            .into_iter()
            .enumerate()
            .map(|(idx, s)| ReshardReq {
                cmd: cmd::INSTALL,
                generation,
                new_s: new_s as u64,
                arg1: idx as u64,
                arg2: n_batches,
                run,
                payload: s.bytes,
            })
            .collect();
        let resps = abort_on!(reshard_rpc(addr, &reqs, t));
        match resps.last().and_then(|r| r.status()) {
            Some(_) => {}
            None => {
                let reason = resps.last().map(|r| r.reason()).unwrap_or_else(|| "no reply".into());
                abort_all(t);
                return Err(bad(format!("suboram {sub} refused the staged partition: {reason}")));
            }
        }
    }
    fire(&mut opts, "installed");

    // Commit subORAMs first — each persists the new generation before
    // acknowledging. The first ack is the point of no return: after it the
    // driver never aborts, only rolls forward.
    let commit = |gen: u64| ReshardReq {
        cmd: cmd::COMMIT,
        generation: gen,
        new_s: 0,
        arg1: 0,
        arg2: 0,
        run,
        payload: Vec::new(),
    };
    // Distinguishing a refusal from a lost ack is what keeps the abort path
    // safe: a node can durably commit generation G and then lose the reply
    // (its persist outlasting the RPC read timeout), and aborting on that
    // would scrub a node already serving G while every peer drops its
    // staged partition — objects remapped off the node would exist nowhere.
    let commit_verdict = |addr: &str, want_active: Option<usize>| -> CommitVerdict {
        if let Ok(r) = single_rpc(addr, commit(generation), t) {
            if let Some(verdict) = classify_commit_reply(&r, generation, want_active) {
                return verdict;
            }
            // Indeterminate FAILED: the commit is still queued on the node
            // and may yet apply — fall through to the probe.
        }
        // (A transport error also lands here: the ack may be lost.)
        // The status RPC round-trips through the same epoch loop as the
        // commit, so it answers only after any still-queued commit was
        // processed. A probe showing the old generation after a *lost ack*
        // is still not proof of refusal (the daemon may have restarted
        // mid-persist), so it can never justify an abort — only Flipped or
        // Unknown come out of this path.
        match status_of(addr, t) {
            Ok(st)
                if st.generation == generation
                    && want_active.is_none_or(|s| st.active_s == s) =>
            {
                CommitVerdict::Flipped
            }
            Ok(st) => CommitVerdict::Unknown(format!(
                "ack lost; probe reports generation {}",
                st.generation
            )),
            Err(e) => CommitVerdict::Unknown(format!("ack lost; probe failed: {e}")),
        }
    };

    let mut committed = 0usize;
    for (sub, addr) in m.suborams.iter().enumerate().take(install_hi) {
        match commit_verdict(addr, None) {
            CommitVerdict::Flipped => committed += 1,
            CommitVerdict::Refused(reason) if committed == 0 => {
                abort_all(t);
                return Err(bad(format!(
                    "suboram {sub} refused to commit ({reason}); aborted cleanly"
                )));
            }
            CommitVerdict::Refused(reason) => {
                return Err(bad(format!(
                    "suboram {sub} refused to commit ({reason}) after {committed} nodes flipped; \
                     re-run `snoopyd reshard --new-s {new_s}` to roll the cluster forward"
                )));
            }
            CommitVerdict::Unknown(reason) => {
                // The commit may have durably applied with its ack lost:
                // never abort — roll forward instead (the repair run's
                // union export converges from any mixed state).
                return Err(bad(format!(
                    "suboram {sub} commit outcome unknown ({reason}); not aborting — \
                     re-run `snoopyd reshard --new-s {new_s}` to roll the cluster forward"
                )));
            }
        }
    }
    fire(&mut opts, "committed-suborams");

    // Flip every balancer's routing table; the held ticks then execute at
    // the new layout. Same verdict discipline: a lost ack is re-probed
    // before the run is declared incomplete.
    for (i, addr) in m.load_balancers.iter().enumerate() {
        match commit_verdict(addr, Some(new_s)) {
            CommitVerdict::Flipped => {}
            CommitVerdict::Refused(reason) | CommitVerdict::Unknown(reason) => {
                return Err(bad(format!(
                    "balancer {i} did not flip ({reason}; its pause TTL restores the old \
                     routing table, but the subORAMs already committed generation {generation}); \
                     re-run `snoopyd reshard --new-s {new_s}` to roll the cluster forward"
                )));
            }
        }
    }
    fire(&mut opts, "committed");
    Ok(ReshardReport { generation, old_s, new_s, objects_moved, batches_per_node: n_batches })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_and_resp_roundtrip() {
        let req = ReshardReq {
            cmd: cmd::INSTALL,
            generation: 7,
            new_s: 8,
            arg1: 3,
            arg2: 4,
            run: 0xABCD,
            payload: vec![1, 2, 3],
        };
        assert_eq!(ReshardReq::decode(&req.encode()), Some(req));
        assert_eq!(ReshardReq::decode(&[0; 40]), None);
        let r = ReshardResp {
            kind: resp::EXPORT,
            generation: 7,
            active_s: 0,
            phase: 0,
            batch_idx: 2,
            n_batches: 4,
            payload: vec![9],
        };
        assert_eq!(ReshardResp::decode(&r.encode()), Some(r));
        assert_eq!(ReshardResp::decode(&[0; 33]), None);
        let st = ReshardStatus { generation: 3, active_s: 4, phase: ReshardPhase::Paused };
        assert_eq!(status_resp(&st).status(), Some(st));
        assert_eq!(failed_resp("nope").reason(), "nope");
        assert_eq!(failed_resp("nope").status(), None);
    }

    #[test]
    fn commit_reply_classification_separates_refusals_from_lost_acks() {
        let st = |generation, active_s| ReshardStatus {
            generation,
            active_s,
            phase: ReshardPhase::Idle,
        };
        // The node reports the new generation: flipped (with and without an
        // active_s requirement).
        assert!(matches!(
            classify_commit_reply(&status_resp(&st(3, 8)), 3, None),
            Some(CommitVerdict::Flipped)
        ));
        assert!(matches!(
            classify_commit_reply(&status_resp(&st(3, 8)), 3, Some(8)),
            Some(CommitVerdict::Flipped)
        ));
        // Old generation, or the right generation at the wrong fleet size:
        // the node executed the command and refused — authoritative.
        assert!(matches!(
            classify_commit_reply(&status_resp(&st(2, 4)), 3, None),
            Some(CommitVerdict::Refused(_))
        ));
        assert!(matches!(
            classify_commit_reply(&status_resp(&st(3, 4)), 3, Some(8)),
            Some(CommitVerdict::Refused(_))
        ));
        // A plain FAILED is an in-band refusal...
        assert!(matches!(
            classify_commit_reply(&failed_resp("no staged partition"), 3, None),
            Some(CommitVerdict::Refused(_))
        ));
        // ...but an indeterminate FAILED (admin handler gave up waiting on
        // the epoch loop; the commit may still apply) must NOT be read as a
        // refusal — the driver probes instead of aborting.
        let indeterminate = failed_resp(format!("{REASON_INDETERMINATE}suboram loop did not answer"));
        assert!(classify_commit_reply(&indeterminate, 3, None).is_none());
    }

    #[test]
    fn migration_schedule_is_a_public_function_of_object_count_alone() {
        assert_eq!(migration_batches(0), 1);
        assert_eq!(migration_batches(1), 1);
        assert_eq!(migration_batches(64), 1);
        assert_eq!(migration_batches(65), 2);
        assert_eq!(migration_batches(256), 4);
    }

    #[test]
    fn sealed_transfer_shape_is_independent_of_partition_contents() {
        let key = Key256([7u8; 32]);
        let value_len = 16;
        let full: Vec<StoredObject> =
            (0..100u64).map(|i| StoredObject::new(i, &i.to_le_bytes(), value_len)).collect();
        let empty: Vec<StoredObject> = Vec::new();
        let ctx = |node| MigrationCtx {
            key: &key,
            dir: DIR_EXPORT,
            node,
            generation: 1,
            new_s: 8,
            value_len,
        };
        let a = seal_migration(&ctx(0), &full, 256).unwrap();
        let b = seal_migration(&ctx(1), &empty, 256).unwrap();
        // Same batch count, and every batch the same sealed length: the
        // network cannot distinguish a full partition from an empty one.
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len() as u64, migration_batches(256));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes.len(), y.bytes.len());
        }
    }

    #[test]
    fn migration_roundtrip_drops_padding_and_authenticates() {
        let key = Key256([3u8; 32]);
        let value_len = 12;
        let objects: Vec<StoredObject> =
            (0..70u64).map(|i| StoredObject::new(i * 3, &i.to_le_bytes(), value_len)).collect();
        let ctx = |dir, node, generation| MigrationCtx {
            key: &key,
            dir,
            node,
            generation,
            new_s: 4,
            value_len,
        };
        let sealed = seal_migration(&ctx(DIR_INSTALL, 5, 2), &objects, 128).unwrap();
        let mut back = Vec::new();
        for (idx, s) in sealed.iter().enumerate() {
            back.extend(open_migration(&ctx(DIR_INSTALL, 5, 2), idx as u64, s).unwrap());
        }
        back.sort_by_key(|o| o.id);
        let mut want = objects.clone();
        want.sort_by_key(|o| o.id);
        assert_eq!(back, want);
        // Splicing a batch into another slot, direction, or generation fails
        // authentication.
        assert!(open_migration(&ctx(DIR_INSTALL, 5, 2), 1, &sealed[0]).is_err());
        assert!(open_migration(&ctx(DIR_EXPORT, 5, 2), 0, &sealed[0]).is_err());
        assert!(open_migration(&ctx(DIR_INSTALL, 5, 3), 0, &sealed[0]).is_err());
        // A partition larger than the schedule capacity is refused.
        let too_many: Vec<StoredObject> =
            (0..200u64).map(|i| StoredObject::new(i, &[1], value_len)).collect();
        assert!(seal_migration(&ctx(DIR_EXPORT, 0, 2), &too_many, 128).is_err());
    }

    #[test]
    fn node_indices_past_the_nonce_namespace_are_refused() {
        let key = Key256([5u8; 32]);
        let ctx = |node| MigrationCtx {
            key: &key,
            dir: DIR_EXPORT,
            node,
            generation: 1,
            new_s: 4,
            value_len: 8,
        };
        // The last addressable index seals fine; one past it would alias
        // node 0's nonce sequence and is refused by both directions.
        let sealed = seal_migration(&ctx(MAX_MIGRATION_NODES - 1), &[], 64).unwrap();
        assert!(seal_migration(&ctx(MAX_MIGRATION_NODES), &[], 64).is_err());
        assert!(open_migration(&ctx(MAX_MIGRATION_NODES), 0, &sealed[0]).is_err());
    }

    #[test]
    fn migration_keys_differ_per_generation_and_run() {
        let deploy = Key256([9u8; 32]);
        let a = migration_key(&deploy, 1, 42);
        let b = migration_key(&deploy, 2, 42);
        let c = migration_key(&deploy, 1, 43);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
