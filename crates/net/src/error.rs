//! The typed client-side error surface, and the single place where wire
//! frames and `io::Error`s map into it.
//!
//! Historically every failure a client could see was an `io::Error`, with a
//! degraded epoch smuggled through `io::Error::other(Unavailable)` and
//! recovered by a downcast ([`unavailable_info`]). [`NetError`] names each
//! failure class instead; the [`ErrorClass`] projection drives retry
//! decisions, and the `io::Error` conversions keep the legacy
//! [`crate::client::NetClient`] surface working unchanged.

use crate::proto;
use snoopy_core::Unavailable;
use std::fmt;
use std::io;

/// Everything a Snoopy client operation can fail with.
#[derive(Debug)]
pub enum NetError {
    /// The request's epoch completed degraded: the typed [`Unavailable`]
    /// names the epoch and the subORAMs that went silent (a
    /// [`crate::proto::tag::CLIENT_FAIL`] frame, or the channel plane's
    /// `Err` reply).
    Unavailable(Unavailable),
    /// The peer refused the connection or the session (TCP `ECONNREFUSED`,
    /// or a daemon rejecting the hello). Retryable: the daemon may simply
    /// be restarting.
    Refused(io::Error),
    /// A subORAM refused an epoch replay because that epoch was evicted
    /// from its bounded reply cache (a [`crate::proto::tag::RESP_ERR`]
    /// frame). Deterministic: replaying again cannot succeed.
    Evicted {
        /// The refused epoch.
        epoch: u64,
    },
    /// The attempt's deadline passed; the connection may still be healthy.
    Timeout(io::Error),
    /// The peer violated the protocol: malformed frame, undecodable body,
    /// or an AEAD link failure (tamper/replay). Never retried — the same
    /// bytes will fail the same way.
    Protocol(String),
    /// Any other transport failure (peer hung up, reset, broken pipe...).
    Io(io::Error),
}

/// How an error should be handled by a retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The attempt's deadline passed (`WouldBlock`/`TimedOut`): the
    /// connection may still be healthy but this attempt is over.
    Timeout,
    /// The peer is gone (clean EOF mid-frame, reset, broken pipe, refused):
    /// the connection is dead and a retry must re-dial.
    Disconnected,
    /// Not a transport condition (bad frame, link failure, typed
    /// `Unavailable`): retrying the same bytes will not help.
    Fatal,
}

impl NetError {
    /// The retry classification of this error.
    pub fn class(&self) -> ErrorClass {
        match self {
            NetError::Timeout(_) => ErrorClass::Timeout,
            NetError::Refused(_) => ErrorClass::Disconnected,
            NetError::Unavailable(_) | NetError::Evicted { .. } | NetError::Protocol(_) => {
                ErrorClass::Fatal
            }
            NetError::Io(e) => classify_io_error(e),
        }
    }

    /// Builds a protocol violation.
    pub fn protocol(msg: impl Into<String>) -> NetError {
        NetError::Protocol(msg.into())
    }

    /// Classifies a raw transport error into the matching variant —
    /// timeouts and refusals get their own arms, a smuggled
    /// [`Unavailable`] is unwrapped, everything else stays [`NetError::Io`].
    pub fn from_io(e: io::Error) -> NetError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout(e),
            io::ErrorKind::ConnectionRefused => NetError::Refused(e),
            _ => {
                if e.get_ref().is_some_and(|inner| inner.is::<Unavailable>()) {
                    let inner = e.into_inner().expect("checked above");
                    let unavailable = inner.downcast::<Unavailable>().expect("checked above");
                    NetError::Unavailable(*unavailable)
                } else {
                    NetError::Io(e)
                }
            }
        }
    }

    /// Decodes a [`crate::proto::tag::CLIENT_FAIL`] body into
    /// `(seq, NetError::Unavailable)`. The *only* place this wire frame is
    /// interpreted.
    pub fn from_client_fail(body: &[u8]) -> Result<(u64, NetError), NetError> {
        match proto::decode_unavailable(body) {
            Some((seq, err)) => Ok((seq, NetError::Unavailable(err))),
            None => Err(NetError::protocol("bad failure frame")),
        }
    }

    /// Decodes a [`crate::proto::tag::RESP_ERR`] body (epoch `u64` LE) into
    /// [`NetError::Evicted`]. The *only* place this wire frame is
    /// interpreted.
    pub fn from_resp_err(body: &[u8]) -> Result<NetError, NetError> {
        match <[u8; 8]>::try_from(body) {
            Ok(bytes) => Ok(NetError::Evicted { epoch: u64::from_le_bytes(bytes) }),
            Err(_) => Err(NetError::protocol("bad refusal frame")),
        }
    }

    /// Converts back to the legacy `io::Error` surface, preserving every
    /// invariant the old API promised: timeouts keep their kind (so
    /// [`classify_io_error`] still sees them), and a degraded epoch keeps
    /// its downcastable [`Unavailable`] (so [`unavailable_info`] still
    /// works).
    pub fn into_io(self) -> io::Error {
        match self {
            NetError::Unavailable(u) => io::Error::other(u),
            NetError::Refused(e) | NetError::Timeout(e) | NetError::Io(e) => e,
            NetError::Evicted { epoch } => {
                io::Error::new(io::ErrorKind::InvalidData, format!("epoch {epoch} evicted"))
            }
            NetError::Protocol(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unavailable(u) => {
                write!(f, "epoch {} degraded (subORAMs {:?} silent)", u.epoch, u.failed_suborams)
            }
            NetError::Refused(e) => write!(f, "connection refused: {e}"),
            NetError::Evicted { epoch } => write!(f, "epoch {epoch} evicted from reply cache"),
            NetError::Timeout(e) => write!(f, "timed out: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::from_io(e)
    }
}

impl From<NetError> for io::Error {
    fn from(e: NetError) -> io::Error {
        e.into_io()
    }
}

/// Classifies an I/O error for retry purposes. Timeouts (`WouldBlock` is
/// what a socket read deadline surfaces as on Unix, `TimedOut` on other
/// platforms) are distinct from a peer that hung up (`UnexpectedEof` — a
/// clean close mid-frame — reset, or broken pipe); everything else is fatal.
pub fn classify_io_error(e: &io::Error) -> ErrorClass {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ErrorClass::Timeout,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionRefused
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::NotConnected => ErrorClass::Disconnected,
        _ => ErrorClass::Fatal,
    }
}

/// Extracts the typed [`Unavailable`] from a legacy-surface `io::Error`, if
/// the failure was a degraded epoch rather than a transport problem.
pub fn unavailable_info(e: &io::Error) -> Option<&Unavailable> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<Unavailable>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(variant: usize) -> NetError {
        match variant {
            0 => NetError::Unavailable(Unavailable { epoch: 3, failed_suborams: vec![1] }),
            1 => NetError::Refused(io::ErrorKind::ConnectionRefused.into()),
            2 => NetError::Evicted { epoch: 9 },
            3 => NetError::Timeout(io::ErrorKind::WouldBlock.into()),
            4 => NetError::protocol("bad frame"),
            _ => NetError::Io(io::ErrorKind::BrokenPipe.into()),
        }
    }

    #[test]
    fn every_variant_has_a_class_and_a_display() {
        // Exhaustive: one arm per variant, no wildcard, so adding a variant
        // forces this test (and every retry loop) to decide its class.
        for v in 0..6 {
            let err = sample(v);
            let class = match &err {
                NetError::Unavailable(_) => ErrorClass::Fatal,
                NetError::Refused(_) => ErrorClass::Disconnected,
                NetError::Evicted { .. } => ErrorClass::Fatal,
                NetError::Timeout(_) => ErrorClass::Timeout,
                NetError::Protocol(_) => ErrorClass::Fatal,
                NetError::Io(_) => ErrorClass::Disconnected, // broken pipe
            };
            assert_eq!(err.class(), class, "variant {v}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn io_roundtrip_preserves_the_legacy_invariants() {
        // Timeout keeps its kind through the legacy surface.
        let e = NetError::Timeout(io::ErrorKind::WouldBlock.into()).into_io();
        assert_eq!(classify_io_error(&e), ErrorClass::Timeout);
        assert!(matches!(NetError::from_io(e), NetError::Timeout(_)));

        // Unavailable survives as a downcastable payload both ways.
        let u = Unavailable { epoch: 4, failed_suborams: vec![2] };
        let e = NetError::Unavailable(u.clone()).into_io();
        assert_eq!(unavailable_info(&e), Some(&u));
        match NetError::from_io(e) {
            NetError::Unavailable(back) => assert_eq!(back, u),
            other => panic!("expected Unavailable, got {other:?}"),
        }

        // Refused is recognized from the raw kind.
        assert!(matches!(
            NetError::from_io(io::ErrorKind::ConnectionRefused.into()),
            NetError::Refused(_)
        ));

        // Plain transport errors stay Io and classify as before.
        let e = NetError::from_io(io::ErrorKind::UnexpectedEof.into());
        assert!(matches!(e, NetError::Io(_)));
        assert_eq!(e.class(), ErrorClass::Disconnected);
    }

    #[test]
    fn wire_frame_mapping_is_total() {
        // CLIENT_FAIL: valid body → (seq, Unavailable); garbage → Protocol.
        let u = Unavailable { epoch: 77, failed_suborams: vec![0, 3] };
        let body = proto::encode_unavailable(9, &u);
        let (seq, err) = NetError::from_client_fail(&body).unwrap();
        assert_eq!(seq, 9);
        match err {
            NetError::Unavailable(back) => assert_eq!(back, u),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert!(matches!(
            NetError::from_client_fail(&body[..body.len() - 1]),
            Err(NetError::Protocol(_))
        ));

        // RESP_ERR: 8-byte epoch → Evicted; anything else → Protocol.
        match NetError::from_resp_err(&42u64.to_le_bytes()).unwrap() {
            NetError::Evicted { epoch } => assert_eq!(epoch, 42),
            other => panic!("expected Evicted, got {other:?}"),
        }
        assert!(matches!(NetError::from_resp_err(&[1, 2, 3]), Err(NetError::Protocol(_))));
    }
}
