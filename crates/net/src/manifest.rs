//! Hand-rolled cluster-manifest parser.
//!
//! A manifest describes one Snoopy deployment: the public parameters every
//! machine must agree on, and the listen address of each daemon. The format
//! is deliberately trivial — `#` comments, blank lines, and `key = value`
//! pairs, with `loadbalancer`/`suboram` keys repeating in index order:
//!
//! ```text
//! # cluster of one balancer and two subORAMs
//! value_len   = 32
//! lambda      = 128
//! seed        = 1
//! num_objects = 256
//! epoch_ms    = 10
//! # fault tolerance (all optional)
//! sub_deadline_ms = 10000
//! max_replays     = 3
//! retain_epochs   = 8
//! loadbalancer = 127.0.0.1:7000
//! suboram      = 127.0.0.1:7100
//! suboram      = 127.0.0.1:7101
//! ```
//!
//! Every `snoopyd` in a cluster reads the same manifest; a daemon's
//! `--role`/`--index` flags select which line it binds. There is no serde in
//! the build (the workspace compiles with zero network access), hence the
//! by-hand parser.

use snoopy_store::StorageKind;
use std::fmt;

/// A parsed cluster manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Public object size (bytes).
    pub value_len: usize,
    /// Security parameter λ.
    pub lambda: u32,
    /// Deployment seed: derives the shared key (partitioning) and, through
    /// it, the deployment key for link/checkpoint keys. Stands in for the
    /// attestation-time key exchange.
    pub seed: u64,
    /// Object count; each daemon regenerates the initial store
    /// deterministically from the seed (ids `0..num_objects`).
    pub num_objects: u64,
    /// Epoch length driven by each load balancer's ticker.
    pub epoch_ms: u64,
    /// How long a balancer waits for a subORAM's epoch response before
    /// killing the link and replaying the batch (milliseconds). `0` waits
    /// forever (disables deadline-driven recovery).
    pub sub_deadline_ms: u64,
    /// Replay waves allowed per epoch before the balancer completes it in
    /// degraded mode (typed `Unavailable` to every affected client).
    pub max_replays: u32,
    /// How many executed epochs each subORAM keeps in its reply cache (and
    /// checkpoint) for idempotent replay; older epochs are refused.
    pub retain_epochs: u32,
    /// Enclave threads per load balancer for the oblivious sort/compaction
    /// (§8.4, Fig. 13a). Thread count is public configuration; the oblivious
    /// access trace is byte-identical at every setting.
    pub lb_threads: u32,
    /// Enclave threads per subORAM for the parallel linear scan (Fig. 13b).
    pub sub_threads: u32,
    /// Storage tier for subORAM partitions: `memory` (modeled enclave
    /// memory), `external` (AEAD-sealed untrusted RAM), or `disk` (sealed
    /// segment files streamed through a bounded buffer). Public
    /// configuration; the enclave access trace is identical for all three.
    pub storage: StorageKind,
    /// Root directory for `disk` storage; each subORAM daemon uses
    /// `<store_dir>/sub<index>`. Required iff `storage = disk`.
    pub store_dir: Option<String>,
    /// Sealed block size in bytes for `disk` storage (default 4096).
    pub block_bytes: u64,
    /// Bounded scan-buffer capacity in blocks for `disk` storage (default
    /// 64): resident memory during a streaming scan stays O(buffer_blocks),
    /// not O(partition).
    pub buffer_blocks: u64,
    /// How many of the provisioned `suboram` entries serve the initial
    /// layout (`0` = all of them). Extra entries are warm spares a later
    /// `snoopyd reshard` can grow into without re-provisioning machines.
    /// Public configuration: the fleet size is wire-observable.
    pub active_suborams: usize,
    /// Load-balancer listen addresses, in index order.
    pub load_balancers: Vec<String>,
    /// SubORAM listen addresses, in index order.
    pub suborams: Vec<String>,
}

/// A manifest syntax or consistency error, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line the error was found on (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError { line, message: message.into() }
}

impl Manifest {
    /// Parses a manifest from its textual form.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut value_len = None;
        let mut lambda = None;
        let mut seed = None;
        let mut num_objects = None;
        let mut epoch_ms = None;
        let mut sub_deadline_ms = None;
        let mut max_replays = None;
        let mut retain_epochs = None;
        let mut lb_threads = None;
        let mut sub_threads = None;
        let mut storage: Option<StorageKind> = None;
        let mut store_dir: Option<String> = None;
        let mut block_bytes = None;
        let mut buffer_blocks = None;
        let mut active_suborams = None;
        let mut load_balancers: Vec<(String, usize)> = Vec::new();
        let mut suborams: Vec<(String, usize)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(err(lineno, format!("`{key}` has no value")));
            }
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| err(lineno, format!("`{key}`: not a number: `{v}`")))
            };
            let set_once = |slot: &mut Option<u64>, v: &str| {
                if slot.is_some() {
                    return Err(err(lineno, format!("duplicate `{key}`")));
                }
                *slot = Some(parse_u64(v)?);
                Ok(())
            };
            match key {
                "value_len" => set_once(&mut value_len, value)?,
                "lambda" => set_once(&mut lambda, value)?,
                "seed" => set_once(&mut seed, value)?,
                "num_objects" => set_once(&mut num_objects, value)?,
                "epoch_ms" => set_once(&mut epoch_ms, value)?,
                "sub_deadline_ms" => set_once(&mut sub_deadline_ms, value)?,
                "max_replays" => set_once(&mut max_replays, value)?,
                "retain_epochs" => set_once(&mut retain_epochs, value)?,
                "lb_threads" => set_once(&mut lb_threads, value)?,
                "sub_threads" => set_once(&mut sub_threads, value)?,
                "storage" => {
                    if storage.is_some() {
                        return Err(err(lineno, "duplicate `storage`"));
                    }
                    storage = Some(StorageKind::parse(value).ok_or_else(|| {
                        err(
                            lineno,
                            format!("`storage`: expected memory|external|disk, got `{value}`"),
                        )
                    })?);
                }
                "store_dir" => {
                    if store_dir.is_some() {
                        return Err(err(lineno, "duplicate `store_dir`"));
                    }
                    store_dir = Some(value.to_string());
                }
                "block_bytes" => set_once(&mut block_bytes, value)?,
                "buffer_blocks" => set_once(&mut buffer_blocks, value)?,
                "active_suborams" => set_once(&mut active_suborams, value)?,
                "loadbalancer" => load_balancers.push((check_addr(value, lineno)?, lineno)),
                "suboram" => suborams.push((check_addr(value, lineno)?, lineno)),
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }

        // Two daemons sharing an address cannot both bind it; catch the
        // typo at parse time with the offending line, not at deploy time
        // with an opaque EADDRINUSE on one machine.
        {
            let mut seen: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
            for (addr, lineno) in load_balancers.iter().chain(suborams.iter()) {
                if let Some(first) = seen.insert(addr.as_str(), *lineno) {
                    return Err(err(
                        *lineno,
                        format!("duplicate address `{addr}` (first used on line {first})"),
                    ));
                }
            }
        }

        let value_len = value_len.ok_or_else(|| err(0, "missing `value_len`"))? as usize;
        let manifest = Manifest {
            value_len,
            lambda: lambda.ok_or_else(|| err(0, "missing `lambda`"))? as u32,
            seed: seed.ok_or_else(|| err(0, "missing `seed`"))?,
            num_objects: num_objects.ok_or_else(|| err(0, "missing `num_objects`"))?,
            epoch_ms: epoch_ms.unwrap_or(10),
            sub_deadline_ms: sub_deadline_ms.unwrap_or(10_000),
            max_replays: max_replays.unwrap_or(3) as u32,
            retain_epochs: retain_epochs.unwrap_or(8).max(1) as u32,
            // 0 threads cannot run anything; clamp like retain_epochs.
            lb_threads: lb_threads.unwrap_or(1).max(1) as u32,
            sub_threads: sub_threads.unwrap_or(1).max(1) as u32,
            storage: storage.unwrap_or(StorageKind::Memory),
            store_dir,
            // Blocks must hold at least one object and the buffer at least
            // one block; clamp like the thread knobs.
            block_bytes: block_bytes.unwrap_or(4096).max(1),
            buffer_blocks: buffer_blocks.unwrap_or(64).max(1),
            active_suborams: active_suborams.unwrap_or(0) as usize,
            load_balancers: load_balancers.into_iter().map(|(a, _)| a).collect(),
            suborams: suborams.into_iter().map(|(a, _)| a).collect(),
        };
        if manifest.load_balancers.is_empty() {
            return Err(err(0, "no `loadbalancer` entries"));
        }
        if manifest.suborams.is_empty() {
            return Err(err(0, "no `suboram` entries"));
        }
        if manifest.value_len == 0 {
            return Err(err(0, "`value_len` must be positive"));
        }
        if manifest.storage == StorageKind::Disk && manifest.store_dir.is_none() {
            return Err(err(0, "`storage = disk` requires `store_dir`"));
        }
        if manifest.active_suborams > manifest.suborams.len() {
            return Err(err(
                0,
                format!(
                    "`active_suborams = {}` exceeds the {} provisioned `suboram` entries",
                    manifest.active_suborams,
                    manifest.suborams.len()
                ),
            ));
        }
        // The reshard migration nonce carries the node index in 16 bits
        // (see `reshard::MAX_MIGRATION_NODES`): a larger fleet would alias
        // AEAD nonce sequences across subORAMs, so refuse it at the door.
        if manifest.suborams.len() as u64 > crate::reshard::MAX_MIGRATION_NODES {
            return Err(err(
                0,
                format!(
                    "{} `suboram` entries exceed the {} the migration nonce \
                     namespace can address",
                    manifest.suborams.len(),
                    crate::reshard::MAX_MIGRATION_NODES
                ),
            ));
        }
        Ok(manifest)
    }

    /// Reads and parses a manifest file.
    pub fn load(path: &std::path::Path) -> Result<Manifest, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        Manifest::parse(&text)
    }

    /// Renders the manifest back to its textual form (used by tests and
    /// cluster-launch tooling).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("value_len = {}\n", self.value_len));
        out.push_str(&format!("lambda = {}\n", self.lambda));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("num_objects = {}\n", self.num_objects));
        out.push_str(&format!("epoch_ms = {}\n", self.epoch_ms));
        out.push_str(&format!("sub_deadline_ms = {}\n", self.sub_deadline_ms));
        out.push_str(&format!("max_replays = {}\n", self.max_replays));
        out.push_str(&format!("retain_epochs = {}\n", self.retain_epochs));
        out.push_str(&format!("lb_threads = {}\n", self.lb_threads));
        out.push_str(&format!("sub_threads = {}\n", self.sub_threads));
        out.push_str(&format!("storage = {}\n", self.storage));
        if let Some(dir) = &self.store_dir {
            out.push_str(&format!("store_dir = {dir}\n"));
        }
        out.push_str(&format!("block_bytes = {}\n", self.block_bytes));
        out.push_str(&format!("buffer_blocks = {}\n", self.buffer_blocks));
        out.push_str(&format!("active_suborams = {}\n", self.active_suborams));
        for lb in &self.load_balancers {
            out.push_str(&format!("loadbalancer = {lb}\n"));
        }
        for sub in &self.suborams {
            out.push_str(&format!("suboram = {sub}\n"));
        }
        out
    }

    /// The balancer's epoch fault policy from the manifest knobs.
    pub fn fault_policy(&self) -> snoopy_core::EpochFaultPolicy {
        if self.sub_deadline_ms == 0 {
            snoopy_core::EpochFaultPolicy::wait_forever()
        } else {
            snoopy_core::EpochFaultPolicy::with_deadline(
                std::time::Duration::from_millis(self.sub_deadline_ms),
                self.max_replays,
            )
        }
    }

    /// The disk-tier geometry from the manifest knobs.
    pub fn disk_config(&self) -> snoopy_store::DiskConfig {
        snoopy_store::DiskConfig {
            block_bytes: self.block_bytes as usize,
            buffer_blocks: self.buffer_blocks as usize,
        }
    }

    /// The segment directory for subORAM `index` under `store_dir`.
    /// Callers must have validated `storage = disk` (so `store_dir` is set).
    pub fn store_path(&self, index: usize) -> std::path::PathBuf {
        let dir = self.store_dir.as_deref().expect("`storage = disk` requires `store_dir`");
        std::path::Path::new(dir).join(format!("sub{index}"))
    }

    /// The subORAM count the initial layout routes over: `active_suborams`
    /// when set, otherwise every provisioned entry. Always ≥ 1 (the parser
    /// rejects manifests with no `suboram` lines).
    pub fn initial_active(&self) -> usize {
        if self.active_suborams == 0 {
            self.suborams.len()
        } else {
            self.active_suborams
        }
    }

    /// The deterministic initial object store every daemon regenerates:
    /// object `i` holds `i`'s little-endian bytes, zero-padded.
    pub fn initial_objects(&self) -> Vec<snoopy_enclave::wire::StoredObject> {
        (0..self.num_objects)
            .map(|i| snoopy_enclave::wire::StoredObject::new(i, &i.to_le_bytes(), self.value_len))
            .collect()
    }
}

fn check_addr(value: &str, lineno: usize) -> Result<String, ManifestError> {
    // `host:port` shape only; resolution happens at connect/bind time.
    let (_, port) = value
        .rsplit_once(':')
        .ok_or_else(|| err(lineno, format!("address `{value}` is missing `:port`")))?;
    port.parse::<u16>().map_err(|_| err(lineno, format!("bad port in `{value}`")))?;
    Ok(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# comment\n\
value_len = 32   # trailing comment\n\
lambda = 128\n\
seed = 1\n\
num_objects = 256\n\
epoch_ms = 5\n\
loadbalancer = 127.0.0.1:7000\n\
suboram = 127.0.0.1:7100\n\
suboram = 127.0.0.1:7101\n";

    #[test]
    fn parses_a_full_manifest() {
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.value_len, 32);
        assert_eq!(m.lambda, 128);
        assert_eq!(m.epoch_ms, 5);
        assert_eq!(m.load_balancers, vec!["127.0.0.1:7000"]);
        assert_eq!(m.suborams.len(), 2);
        assert_eq!(m.initial_objects().len(), 256);
        // Fault-tolerance knobs default sensibly.
        assert_eq!(m.sub_deadline_ms, 10_000);
        assert_eq!(m.max_replays, 3);
        assert_eq!(m.retain_epochs, 8);
        // Parallelism knobs default to serial.
        assert_eq!(m.lb_threads, 1);
        assert_eq!(m.sub_threads, 1);
        let policy = m.fault_policy();
        assert_eq!(policy.sub_deadline, Some(std::time::Duration::from_secs(10)));
        assert_eq!(policy.max_replays, 3);
    }

    #[test]
    fn fleets_past_the_migration_nonce_namespace_are_rejected() {
        // 65537 unique subORAM addresses: one more than the 16-bit node
        // field in the reshard migration nonce can address.
        let n = crate::reshard::MAX_MIGRATION_NODES + 1;
        let mut text = String::from(
            "value_len = 32\nlambda = 128\nseed = 1\nnum_objects = 256\nepoch_ms = 5\n\
             loadbalancer = 127.0.0.1:7000\n",
        );
        for i in 0..n {
            text.push_str(&format!("suboram = 10.{}.{}.{}:7100\n", i >> 16, (i >> 8) & 0xFF, i & 0xFF));
        }
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("migration nonce"), "{e}");
        // Exactly at the bound is fine.
        let at_bound = text.lines().take(6 + 65536).collect::<Vec<_>>().join("\n");
        assert!(Manifest::parse(&at_bound).is_ok());
    }

    #[test]
    fn fault_knobs_are_configurable_and_zero_deadline_waits_forever() {
        let text = format!("{GOOD}sub_deadline_ms = 250\nmax_replays = 1\nretain_epochs = 4\n");
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.sub_deadline_ms, 250);
        assert_eq!(m.max_replays, 1);
        assert_eq!(m.retain_epochs, 4);
        let off = Manifest::parse(&format!("{GOOD}sub_deadline_ms = 0\n")).unwrap();
        assert_eq!(off.fault_policy(), snoopy_core::EpochFaultPolicy::wait_forever());
        // retain_epochs = 0 would disable the reply cache entirely; clamp.
        let clamped = Manifest::parse(&format!("{GOOD}retain_epochs = 0\n")).unwrap();
        assert_eq!(clamped.retain_epochs, 1);
    }

    #[test]
    fn thread_knobs_parse_clamp_and_reject_garbage() {
        let m = Manifest::parse(&format!("{GOOD}lb_threads = 4\nsub_threads = 8\n")).unwrap();
        assert_eq!(m.lb_threads, 4);
        assert_eq!(m.sub_threads, 8);
        // 0 threads cannot run an epoch; clamp to serial.
        let clamped = Manifest::parse(&format!("{GOOD}lb_threads = 0\nsub_threads = 0\n")).unwrap();
        assert_eq!(clamped.lb_threads, 1);
        assert_eq!(clamped.sub_threads, 1);
        // Non-numeric and duplicate values are line-numbered errors.
        let e = Manifest::parse(&format!("{GOOD}lb_threads = many\n")).unwrap_err();
        assert!(e.message.contains("not a number"), "{e}");
        assert!(e.line > 0, "{e}");
        let e = Manifest::parse(&format!("{GOOD}sub_threads = 2\nsub_threads = 4\n")).unwrap_err();
        assert!(e.message.contains("duplicate `sub_threads`"), "{e}");
        let e = Manifest::parse(&format!("{GOOD}sub_threads =\n")).unwrap_err();
        assert!(e.message.contains("has no value"), "{e}");
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
        let threaded =
            Manifest::parse(&format!("{GOOD}lb_threads = 4\nsub_threads = 2\n")).unwrap();
        assert_eq!(Manifest::parse(&threaded.render()).unwrap(), threaded);
        let disk = Manifest::parse(&format!(
            "{GOOD}storage = disk\nstore_dir = /tmp/snoopy-store\nblock_bytes = 1024\nbuffer_blocks = 8\n"
        ))
        .unwrap();
        assert_eq!(Manifest::parse(&disk.render()).unwrap(), disk);
    }

    #[test]
    fn storage_keys_parse_default_and_validate() {
        // Default tier is in-enclave memory with the documented geometry.
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.storage, StorageKind::Memory);
        assert_eq!(m.store_dir, None);
        assert_eq!(m.block_bytes, 4096);
        assert_eq!(m.buffer_blocks, 64);
        // All three tiers parse; disk carries its geometry through.
        let ext = Manifest::parse(&format!("{GOOD}storage = external\n")).unwrap();
        assert_eq!(ext.storage, StorageKind::External);
        let disk = Manifest::parse(&format!(
            "{GOOD}storage = disk\nstore_dir = /tmp/s\nblock_bytes = 512\nbuffer_blocks = 4\n"
        ))
        .unwrap();
        assert_eq!(disk.storage, StorageKind::Disk);
        assert_eq!(
            disk.disk_config(),
            snoopy_store::DiskConfig { block_bytes: 512, buffer_blocks: 4 }
        );
        assert_eq!(disk.store_path(2), std::path::Path::new("/tmp/s").join("sub2"));
        // Disk without a directory is a whole-file error, not a deploy-time
        // surprise.
        let e = Manifest::parse(&format!("{GOOD}storage = disk\n")).unwrap_err();
        assert!(e.message.contains("store_dir"), "{e}");
        // Unknown tiers and duplicates are line-numbered errors.
        let e = Manifest::parse(&format!("{GOOD}storage = floppy\n")).unwrap_err();
        assert!(e.message.contains("memory|external|disk"), "{e}");
        assert!(e.line > 0, "{e}");
        let e = Manifest::parse(&format!("{GOOD}storage = memory\nstorage = disk\n")).unwrap_err();
        assert!(e.message.contains("duplicate `storage`"), "{e}");
        // Zero-sized geometry clamps rather than dividing by zero later.
        let clamped =
            Manifest::parse(&format!("{GOOD}block_bytes = 0\nbuffer_blocks = 0\n")).unwrap();
        assert_eq!(clamped.block_bytes, 1);
        assert_eq!(clamped.buffer_blocks, 1);
    }

    #[test]
    fn active_suborams_parses_defaults_and_validates() {
        // Default: every provisioned subORAM serves the initial layout.
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.active_suborams, 0);
        assert_eq!(m.initial_active(), 2);
        // Warm spares: 1 active of 2 provisioned.
        let m = Manifest::parse(&format!("{GOOD}active_suborams = 1\n")).unwrap();
        assert_eq!(m.initial_active(), 1);
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m, "render must carry the knob");
        // More active than provisioned is a whole-file error.
        let e = Manifest::parse(&format!("{GOOD}active_suborams = 3\n")).unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Manifest::parse("nonsense\n").is_err());
        assert!(Manifest::parse("value_len = x\n").is_err());
        let dup = format!("{GOOD}seed = 2\n");
        let e = Manifest::parse(&dup).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        // Missing subORAMs.
        let e =
            Manifest::parse("value_len=8\nlambda=80\nseed=0\nnum_objects=4\nloadbalancer=a:1\n")
                .unwrap_err();
        assert!(e.message.contains("suboram"), "{e}");
        // Bad address.
        assert!(Manifest::parse(&GOOD.replace("127.0.0.1:7100", "127.0.0.1")).is_err());
    }

    #[test]
    fn duplicate_addresses_are_descriptive_errors() {
        // Two subORAMs on the same port.
        let text = GOOD.replace("127.0.0.1:7101", "127.0.0.1:7100");
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("duplicate address `127.0.0.1:7100`"), "{e}");
        assert!(e.message.contains("first used on line"), "{e}");
        assert!(e.line > 0, "duplicate addresses should name the offending line");
        // A balancer colliding with a subORAM is just as fatal.
        let text = GOOD.replace("127.0.0.1:7000", "127.0.0.1:7101");
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("duplicate address"), "{e}");
        assert!(e.to_string().contains("manifest line"), "{e}");
    }

    /// `GOOD` grown to a 3×2 cluster: repeated `loadbalancer` keys, in
    /// index order.
    const MULTI_LB: &str = "\
value_len = 32\n\
lambda = 128\n\
seed = 1\n\
num_objects = 256\n\
epoch_ms = 5\n\
loadbalancer = 127.0.0.1:7000\n\
loadbalancer = 127.0.0.1:7001\n\
loadbalancer = 127.0.0.1:7002\n\
suboram = 127.0.0.1:7100\n\
suboram = 127.0.0.1:7101\n";

    #[test]
    fn multi_balancer_manifests_parse_in_index_order() {
        let m = Manifest::parse(MULTI_LB).unwrap();
        // Line order is index order: the i-th `loadbalancer` key is balancer
        // i, which keys session-link derivation and the epoch-id residue
        // class — reordering the list is a different deployment.
        assert_eq!(m.load_balancers, vec!["127.0.0.1:7000", "127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(m.suborams, vec!["127.0.0.1:7100", "127.0.0.1:7101"]);
        // Indexed lookup: each balancer's address sits at its index.
        for (i, addr) in m.load_balancers.iter().enumerate() {
            assert_eq!(addr, &format!("127.0.0.1:700{i}"));
        }
    }

    #[test]
    fn multi_balancer_manifests_render_roundtrip() {
        let m = Manifest::parse(MULTI_LB).unwrap();
        let back = Manifest::parse(&m.render()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.load_balancers, m.load_balancers, "render must preserve index order");
    }

    #[test]
    fn duplicate_balancer_addresses_are_rejected() {
        // Two balancers on one address.
        let text = MULTI_LB.replace("127.0.0.1:7002", "127.0.0.1:7000");
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("duplicate address `127.0.0.1:7000`"), "{e}");
        assert!(e.message.contains("first used on line"), "{e}");
        // A balancer colliding with a subORAM in the k≥2 shape.
        let text = MULTI_LB.replace("127.0.0.1:7001", "127.0.0.1:7101");
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("duplicate address `127.0.0.1:7101`"), "{e}");
    }

    #[test]
    fn truncated_lines_are_descriptive_errors_not_panics() {
        // A key with `=` but nothing after it.
        let e = Manifest::parse("value_len =\n").unwrap_err();
        assert!(e.message.contains("has no value"), "{e}");
        assert_eq!(e.line, 1);
        // A bare key with no `=` at all (a line cut mid-edit).
        let e = Manifest::parse("value_len = 8\nlambda\n").unwrap_err();
        assert!(e.message.contains("expected `key = value`"), "{e}");
        assert_eq!(e.line, 2);
        // An address cut short of its port.
        let e = Manifest::parse(&format!("{GOOD}suboram = 127.0.0.1:\n")).unwrap_err();
        assert!(e.message.contains("bad port"), "{e}");
        // A file truncated before the address lists: whole-file error.
        let e =
            Manifest::parse("value_len = 8\nlambda = 80\nseed = 0\nnum_objects = 4\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("loadbalancer"), "{e}");
    }
}
