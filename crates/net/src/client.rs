//! The legacy blocking client surface, plus the admin RPCs.
//!
//! [`NetClient`] predates the unified [`crate::api::SnoopyClient`] facade
//! and survives as a thin forwarding shim: every constructor builds a
//! facade client over the TCP transport, and every operation maps the typed
//! [`NetError`](crate::error::NetError) back onto the historical
//! `io::Error` surface (timeout kinds preserved, degraded epochs still
//! downcastable via [`unavailable_info`]). New code should use
//! [`SnoopyClient`] directly; this module is kept so existing deployments
//! compile unchanged.
//!
//! The admin helpers ([`fetch_stats`], [`fetch_metrics`], [`fetch_health`],
//! [`shutdown_daemon`]) speak the plaintext control frames; each has a
//! `_with` variant taking an explicit [`RetryPolicy`].

use crate::api::SnoopyClient;
use crate::frame::{read_frame, write_frame};
use crate::proto::{tag, Hello, Role};
use snoopy_core::RetryPolicy;
use snoopy_crypto::Key256;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

pub use crate::error::{classify_io_error, unavailable_info, ErrorClass};

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Connection parameters for a [`NetClient`].
///
/// Superseded by [`crate::api::SnoopyClientBuilder`], which absorbs these
/// knobs; kept so existing call sites compile unchanged.
#[derive(Clone, Debug)]
pub struct ConnectConfig {
    /// Which load balancer (manifest index) the session keys bind to.
    pub lb_index: usize,
    /// Public object size.
    pub value_len: usize,
    /// Per-attempt socket read deadline (formerly a hardcoded 60 s).
    pub read_timeout: Duration,
    /// Retry schedule for dials and request roundtrips.
    pub retry: RetryPolicy,
}

impl ConnectConfig {
    /// Defaults: 10 s read timeout, [`RetryPolicy::client_default`].
    pub fn new(lb_index: usize, value_len: usize) -> ConnectConfig {
        ConnectConfig {
            lb_index,
            value_len,
            read_timeout: Duration::from_secs(10),
            retry: RetryPolicy::client_default(),
        }
    }

    /// Replaces the per-attempt read deadline.
    pub fn read_timeout(mut self, timeout: Duration) -> ConnectConfig {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> ConnectConfig {
        self.retry = retry;
        self
    }
}

/// A blocking client session with one load balancer.
///
/// Superseded by [`SnoopyClient`] (transport-agnostic, typed errors); this
/// shim forwards to it and converts errors back to `io::Error`.
pub struct NetClient {
    inner: SnoopyClient,
}

impl NetClient {
    /// Dials the balancer at `addr` (index `lb_index` in the manifest) with
    /// default connection parameters. `deploy` is the deployment key
    /// ([`crate::proto::deployment_key`] of the manifest seed).
    pub fn connect(
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
        value_len: usize,
    ) -> io::Result<NetClient> {
        NetClient::connect_with(addr, deploy, ConnectConfig::new(lb_index, value_len))
    }

    /// Dials with explicit [`ConnectConfig`] (read timeout + retry policy).
    /// The dial itself runs under the config's retry schedule.
    pub fn connect_with(
        addr: &str,
        deploy: &Key256,
        config: ConnectConfig,
    ) -> io::Result<NetClient> {
        let inner = SnoopyClient::builder(config.value_len)
            .read_timeout(config.read_timeout)
            .retry(config.retry)
            .connect_tcp(addr, config.lb_index, deploy)
            .map_err(io::Error::from)?;
        Ok(NetClient { inner })
    }

    /// Reads object `id`, blocking until the epoch containing the request
    /// commits. Transparently retries (reconnecting as needed) under the
    /// connect config's [`RetryPolicy`]; a degraded epoch surfaces as an
    /// error carrying [`snoopy_core::Unavailable`] (see
    /// [`unavailable_info`]).
    pub fn read(&mut self, id: u64) -> io::Result<Vec<u8>> {
        self.inner.read(id).map_err(io::Error::from)
    }

    /// Writes object `id`; returns the pre-write value (Snoopy's write
    /// semantics). Retried writes are at-least-once: if the first attempt's
    /// epoch committed but the response was lost, the retry re-executes the
    /// write in a later epoch and the returned pre-write value reflects the
    /// first write.
    pub fn write(&mut self, id: u64, payload: &[u8]) -> io::Result<Vec<u8>> {
        self.inner.write(id, payload).map_err(io::Error::from)
    }
}

fn admin_dial(addr: &str, policy: &RetryPolicy) -> io::Result<TcpStream> {
    let timeout = policy.attempt_timeout.unwrap_or(Duration::from_secs(30));
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    write_frame(&mut stream, tag::HELLO, &Hello::new(Role::Admin, 0).encode())?;
    Ok(stream)
}

fn admin_rpc(addr: &str, policy: &RetryPolicy, req: u8, resp: u8) -> io::Result<Vec<u8>> {
    policy.run(|attempt| {
        if attempt > 0 {
            crate::api::count_retry();
        }
        let mut stream = admin_dial(addr, policy)?;
        write_frame(&mut stream, req, b"")?;
        let (t, body) = read_frame(&mut stream)?;
        if t != resp {
            return Err(bad("unexpected frame from daemon"));
        }
        Ok(body)
    })
}

/// Fetches a daemon's per-link counters (the `stats` RPC) as its textual
/// form; parse with [`crate::stats::parse_stats`].
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    fetch_stats_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_stats`] under an explicit retry policy.
pub fn fetch_stats_with(addr: &str, policy: &RetryPolicy) -> io::Result<String> {
    let body = admin_rpc(addr, policy, tag::STATS_REQ, tag::STATS_RESP)?;
    String::from_utf8(body).map_err(|_| bad("stats not utf-8"))
}

/// Fetches a daemon's Prometheus text exposition (the `metrics` RPC):
/// per-stage latency histograms, epoch/request counters, and every link
/// counter as labeled series. All series pass through the
/// [`snoopy_telemetry::Public`] leakage gate daemon-side.
pub fn fetch_metrics(addr: &str) -> io::Result<String> {
    fetch_metrics_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_metrics`] under an explicit retry policy.
pub fn fetch_metrics_with(addr: &str, policy: &RetryPolicy) -> io::Result<String> {
    let body = admin_rpc(addr, policy, tag::METRICS_REQ, tag::METRICS_RESP)?;
    String::from_utf8(body).map_err(|_| bad("metrics not utf-8"))
}

/// Probes a daemon's liveness (the `health` RPC): returns its parsed
/// identity/uptime/epoch header. The balancer uses the same header shape for
/// its own heartbeat checks; everything in it is public (configuration and
/// coarse process age).
pub fn fetch_health(addr: &str) -> io::Result<crate::stats::StatsHeader> {
    fetch_health_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_health`] under an explicit retry policy.
pub fn fetch_health_with(
    addr: &str,
    policy: &RetryPolicy,
) -> io::Result<crate::stats::StatsHeader> {
    let body = admin_rpc(addr, policy, tag::HEALTH_REQ, tag::HEALTH_RESP)?;
    let text = String::from_utf8(body).map_err(|_| bad("health not utf-8"))?;
    crate::stats::parse_stats_header(&text).ok_or_else(|| bad("health body missing header"))
}

/// Drains a daemon's tracer over the `trace` RPC, returning its
/// [`ProcessDump`](snoopy_telemetry::ProcessDump) with `clock_offset_ns`
/// already set from this round trip (Cristian's midpoint estimate —
/// [`snoopy_telemetry::merge::estimate_offset_ns`]), so the dumps from a
/// whole cluster merge onto the collector's timeline via
/// [`snoopy_telemetry::merged_chrome_trace`]. The drain is destructive:
/// each span is returned by exactly one trace RPC.
pub fn fetch_trace(addr: &str) -> io::Result<snoopy_telemetry::ProcessDump> {
    fetch_trace_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_trace`] under an explicit retry policy.
pub fn fetch_trace_with(
    addr: &str,
    policy: &RetryPolicy,
) -> io::Result<snoopy_telemetry::ProcessDump> {
    let t0 = snoopy_telemetry::events::unix_now_ns();
    let body = admin_rpc(addr, policy, tag::TRACE_REQ, tag::TRACE_RESP)?;
    let t1 = snoopy_telemetry::events::unix_now_ns();
    let text = String::from_utf8(body).map_err(|_| bad("trace not utf-8"))?;
    let mut dump = snoopy_telemetry::ProcessDump::parse(&text)
        .map_err(|e| bad(&format!("bad trace dump: {e}")))?;
    dump.clock_offset_ns = snoopy_telemetry::merge::estimate_offset_ns(t0, dump.now_unix_ns, t1);
    Ok(dump)
}

/// Fetches a daemon's flight-recorder snapshot (the `events` RPC): the
/// bounded ring of structured lifecycle events, newest last. Non-destructive
/// — the daemon keeps its ring. See [`snoopy_telemetry::events`].
pub fn fetch_events(addr: &str) -> io::Result<Vec<snoopy_telemetry::EventRecord>> {
    fetch_events_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_events`] under an explicit retry policy.
pub fn fetch_events_with(
    addr: &str,
    policy: &RetryPolicy,
) -> io::Result<Vec<snoopy_telemetry::EventRecord>> {
    let body = admin_rpc(addr, policy, tag::EVENTS_REQ, tag::EVENTS_RESP)?;
    let text = String::from_utf8(body).map_err(|_| bad("events not utf-8"))?;
    snoopy_telemetry::events::parse_jsonl(&text).map_err(|e| bad(&format!("bad events dump: {e}")))
}

/// Asks a daemon to shut down gracefully; returns once it acknowledges.
/// Deliberately *not* retried beyond the dial: a shutdown that was delivered
/// but whose ack was lost must not be re-sent into a freshly restarted
/// daemon.
pub fn shutdown_daemon(addr: &str) -> io::Result<()> {
    let mut stream = admin_dial(addr, &RetryPolicy::admin_default())?;
    write_frame(&mut stream, tag::SHUTDOWN, b"")?;
    let (t, _) = read_frame(&mut stream)?;
    if t != tag::SHUTDOWN_ACK {
        return Err(bad("unexpected frame from daemon"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use snoopy_core::Unavailable;

    #[test]
    fn error_classification_maps_kinds() {
        // The regression this guards: a socket read deadline surfaces as
        // WouldBlock on Unix and must NOT be treated as the peer hanging up.
        let timeout = io::Error::new(io::ErrorKind::WouldBlock, "read timed out");
        assert_eq!(classify_io_error(&timeout), ErrorClass::Timeout);
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "read timed out");
        assert_eq!(classify_io_error(&timeout), ErrorClass::Timeout);
        // A clean EOF mid-frame (read_exact with the peer closed) is a
        // disconnect, not a timeout and not fatal.
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "failed to fill whole buffer");
        assert_eq!(classify_io_error(&eof), ErrorClass::Disconnected);
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "reset by peer");
        assert_eq!(classify_io_error(&reset), ErrorClass::Disconnected);
        // Protocol-level corruption must not be retried.
        let corrupt = io::Error::new(io::ErrorKind::InvalidData, "bad frame length");
        assert_eq!(classify_io_error(&corrupt), ErrorClass::Fatal);
    }

    #[test]
    fn unavailable_roundtrips_through_io_error() {
        let u = Unavailable { epoch: 4, failed_suborams: vec![2] };
        let e = io::Error::other(u.clone());
        assert_eq!(unavailable_info(&e), Some(&u));
        let plain = io::Error::new(io::ErrorKind::TimedOut, "nope");
        assert_eq!(unavailable_info(&plain), None);
    }

    /// A stub listener that accepts one connection, reads the hello, then
    /// behaves per `mode`. Exercises the client's error mapping against real
    /// sockets.
    fn stub_listener(mode: &'static str) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream); // hello
            match mode {
                // Close immediately: the client's next read sees clean EOF.
                "eof" => drop(stream),
                // Read the request then go silent past the client deadline.
                "stall" => {
                    let _ = read_frame(&mut stream);
                    std::thread::sleep(Duration::from_millis(500));
                }
                _ => unreachable!(),
            }
        });
        (addr, handle)
    }

    fn test_config() -> ConnectConfig {
        ConnectConfig::new(0, 16).read_timeout(Duration::from_millis(50)).retry(RetryPolicy::once())
    }

    #[test]
    fn peer_eof_maps_to_disconnected_not_timeout() {
        let (addr, handle) = stub_listener("eof");
        let deploy = proto::deployment_key(1);
        let mut client =
            NetClient::connect_with(&addr.to_string(), &deploy, test_config()).unwrap();
        let err = client.read(0).unwrap_err();
        assert_eq!(
            classify_io_error(&err),
            ErrorClass::Disconnected,
            "peer close must classify as disconnect, got {err:?}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn silent_peer_maps_to_timeout_not_eof() {
        let (addr, handle) = stub_listener("stall");
        let deploy = proto::deployment_key(1);
        let mut client =
            NetClient::connect_with(&addr.to_string(), &deploy, test_config()).unwrap();
        let err = client.read(0).unwrap_err();
        assert_eq!(
            classify_io_error(&err),
            ErrorClass::Timeout,
            "a stalled peer must classify as timeout, got {err:?}"
        );
        handle.join().unwrap();
    }
}
