//! Client and admin connections to a running cluster.
//!
//! [`NetClient`] is the blocking client API: it dials a load balancer, runs
//! the session hello, and then issues reads/writes over the sealed
//! client ↔ balancer link. Connection parameters (per-attempt read timeout,
//! retry/backoff schedule) come from [`ConnectConfig`]; on a timeout or a
//! dead connection the client re-dials (fresh session keys) and re-issues
//! the request under its [`RetryPolicy`], deduplicating responses by the
//! per-request `seq`. Reads are idempotent; a retried write is at-least-once
//! (see DESIGN.md's failure model).
//!
//! The admin helpers ([`fetch_stats`], [`fetch_metrics`], [`fetch_health`],
//! [`shutdown_daemon`]) speak the plaintext control frames; each has a
//! `_with` variant taking an explicit [`RetryPolicy`].

use crate::frame::{read_frame, write_frame};
use crate::proto::{self, tag, Hello, Role};
use snoopy_core::link::Link;
use snoopy_core::{RetryPolicy, Unavailable};
use snoopy_crypto::Key256;
use snoopy_enclave::wire::{Request, Response};
use snoopy_telemetry::{metrics, Public};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// How an I/O error from a client connection should be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The attempt's deadline passed (`WouldBlock`/`TimedOut`): the
    /// connection may still be healthy but this attempt is over.
    Timeout,
    /// The peer is gone (clean EOF mid-frame, reset, broken pipe): the
    /// connection is dead and a retry must re-dial.
    Disconnected,
    /// Not a transport condition (bad frame, link failure, typed
    /// `Unavailable`): retrying the same bytes will not help.
    Fatal,
}

/// Classifies an I/O error for retry purposes. Timeouts (`WouldBlock` is
/// what a socket read deadline surfaces as on Unix, `TimedOut` on other
/// platforms) are distinct from a peer that hung up (`UnexpectedEof` — a
/// clean close mid-frame — reset, or broken pipe); everything else is fatal.
pub fn classify_io_error(e: &io::Error) -> ErrorClass {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ErrorClass::Timeout,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::NotConnected => ErrorClass::Disconnected,
        _ => ErrorClass::Fatal,
    }
}

/// Extracts the typed [`Unavailable`] from an error returned by
/// [`NetClient::read`]/[`NetClient::write`], if the failure was a degraded
/// epoch rather than a transport problem.
pub fn unavailable_info(e: &io::Error) -> Option<&Unavailable> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<Unavailable>())
}

/// Connection parameters for a [`NetClient`].
#[derive(Clone, Debug)]
pub struct ConnectConfig {
    /// Which load balancer (manifest index) the session keys bind to.
    pub lb_index: usize,
    /// Public object size.
    pub value_len: usize,
    /// Per-attempt socket read deadline (formerly a hardcoded 60 s).
    pub read_timeout: Duration,
    /// Retry schedule for dials and request roundtrips.
    pub retry: RetryPolicy,
}

impl ConnectConfig {
    /// Defaults: 10 s read timeout, [`RetryPolicy::client_default`].
    pub fn new(lb_index: usize, value_len: usize) -> ConnectConfig {
        ConnectConfig {
            lb_index,
            value_len,
            read_timeout: Duration::from_secs(10),
            retry: RetryPolicy::client_default(),
        }
    }

    /// Replaces the per-attempt read deadline.
    pub fn read_timeout(mut self, timeout: Duration) -> ConnectConfig {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> ConnectConfig {
        self.retry = retry;
        self
    }
}

/// A blocking client session with one load balancer.
pub struct NetClient {
    stream: TcpStream,
    req_link: Link,
    resp_link: Link,
    addr: String,
    deploy: Key256,
    config: ConnectConfig,
    seq: u64,
}

impl NetClient {
    /// Dials the balancer at `addr` (index `lb_index` in the manifest) with
    /// default connection parameters. `deploy` is the deployment key
    /// ([`proto::deployment_key`] of the manifest seed).
    pub fn connect(
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
        value_len: usize,
    ) -> io::Result<NetClient> {
        NetClient::connect_with(addr, deploy, ConnectConfig::new(lb_index, value_len))
    }

    /// Dials with explicit [`ConnectConfig`] (read timeout + retry policy).
    /// The dial itself runs under the config's retry schedule.
    pub fn connect_with(
        addr: &str,
        deploy: &Key256,
        config: ConnectConfig,
    ) -> io::Result<NetClient> {
        let (stream, req_link, resp_link) = config.retry.run(|attempt| {
            if attempt > 0 {
                count_retry();
            }
            dial_session(addr, deploy, &config)
        })?;
        Ok(NetClient {
            stream,
            req_link,
            resp_link,
            addr: addr.to_string(),
            deploy: deploy.clone(),
            config,
            seq: 0,
        })
    }

    /// Reads object `id`, blocking until the epoch containing the request
    /// commits. Transparently retries (reconnecting as needed) under the
    /// connect config's [`RetryPolicy`]; a degraded epoch surfaces as an
    /// error carrying [`Unavailable`] (see [`unavailable_info`]).
    pub fn read(&mut self, id: u64) -> io::Result<Vec<u8>> {
        let seq = self.next_seq();
        let req = Request::read(id, self.config.value_len, 0, seq);
        Ok(self.roundtrip_with_retry(req, seq)?.value)
    }

    /// Writes object `id`; returns the pre-write value (Snoopy's write
    /// semantics). Retried writes are at-least-once: if the first attempt's
    /// epoch committed but the response was lost, the retry re-executes the
    /// write in a later epoch and the returned pre-write value reflects the
    /// first write.
    pub fn write(&mut self, id: u64, payload: &[u8]) -> io::Result<Vec<u8>> {
        let seq = self.next_seq();
        let req = Request::write(id, payload, self.config.value_len, 0, seq);
        Ok(self.roundtrip_with_retry(req, seq)?.value)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Re-dials and installs a fresh session (new session id → new link
    /// keys; the old session's sequence numbers die with it).
    fn reconnect(&mut self) -> io::Result<()> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let (stream, req_link, resp_link) = dial_session(&self.addr, &self.deploy, &self.config)?;
        self.stream = stream;
        self.req_link = req_link;
        self.resp_link = resp_link;
        Ok(())
    }

    fn roundtrip_with_retry(&mut self, req: Request, seq: u64) -> io::Result<Response> {
        let policy = self.config.retry.clone();
        let mut attempt = 0u32;
        loop {
            let result = self.roundtrip(req.clone(), seq);
            let err = match result {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let next = attempt + 1;
            let class = classify_io_error(&err);
            if class == ErrorClass::Fatal || !policy.allows(next) {
                return Err(err);
            }
            std::thread::sleep(policy.backoff(next));
            attempt = next;
            count_retry();
            if let Err(redial) = self.reconnect() {
                // Keep retrying through dial failures until attempts run out.
                if !policy.allows(attempt + 1) {
                    return Err(redial);
                }
            }
        }
    }

    fn roundtrip(&mut self, req: Request, seq: u64) -> io::Result<Response> {
        let sealed = self.req_link.seal(&[req]).map_err(|_| bad("request link failure"))?;
        write_frame(&mut self.stream, tag::CLIENT_REQ, &sealed.bytes)?;
        loop {
            let (t, body) = read_frame(&mut self.stream)?;
            match t {
                tag::CLIENT_RESP => {
                    let sealed = snoopy_crypto::aead::SealedBox { bytes: body };
                    let batch = self
                        .resp_link
                        .open_responses(&sealed, self.config.value_len)
                        .map_err(|_| bad("response link failure"))?;
                    for resp in batch {
                        if resp.seq == seq {
                            return Ok(resp);
                        }
                        // A stale response for an abandoned earlier request.
                    }
                }
                tag::CLIENT_FAIL => {
                    let (fail_seq, err) =
                        proto::decode_unavailable(&body).ok_or_else(|| bad("bad failure frame"))?;
                    if fail_seq == seq {
                        return Err(io::Error::other(err));
                    }
                    // A stale failure for an abandoned earlier request.
                }
                _ => return Err(bad("unexpected frame from balancer")),
            }
        }
    }
}

fn dial_session(
    addr: &str,
    deploy: &Key256,
    config: &ConnectConfig,
) -> io::Result<(TcpStream, Link, Link)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let hello = Hello::new(Role::Client, 0);
    write_frame(&mut stream, tag::HELLO, &hello.encode())?;
    let (req_link, resp_link) = proto::client_session_links(deploy, config.lb_index, hello.session);
    Ok((stream, req_link, resp_link))
}

fn count_retry() {
    metrics::global()
        .counter(metrics::names::RETRIES_TOTAL, "operation retries under a RetryPolicy")
        .inc(Public::wire_observable(()));
}

fn admin_dial(addr: &str, policy: &RetryPolicy) -> io::Result<TcpStream> {
    let timeout = policy.attempt_timeout.unwrap_or(Duration::from_secs(30));
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    write_frame(&mut stream, tag::HELLO, &Hello::new(Role::Admin, 0).encode())?;
    Ok(stream)
}

fn admin_rpc(addr: &str, policy: &RetryPolicy, req: u8, resp: u8) -> io::Result<Vec<u8>> {
    policy.run(|attempt| {
        if attempt > 0 {
            count_retry();
        }
        let mut stream = admin_dial(addr, policy)?;
        write_frame(&mut stream, req, b"")?;
        let (t, body) = read_frame(&mut stream)?;
        if t != resp {
            return Err(bad("unexpected frame from daemon"));
        }
        Ok(body)
    })
}

/// Fetches a daemon's per-link counters (the `stats` RPC) as its textual
/// form; parse with [`crate::stats::parse_stats`].
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    fetch_stats_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_stats`] under an explicit retry policy.
pub fn fetch_stats_with(addr: &str, policy: &RetryPolicy) -> io::Result<String> {
    let body = admin_rpc(addr, policy, tag::STATS_REQ, tag::STATS_RESP)?;
    String::from_utf8(body).map_err(|_| bad("stats not utf-8"))
}

/// Fetches a daemon's Prometheus text exposition (the `metrics` RPC):
/// per-stage latency histograms, epoch/request counters, and every link
/// counter as labeled series. All series pass through the
/// [`snoopy_telemetry::Public`] leakage gate daemon-side.
pub fn fetch_metrics(addr: &str) -> io::Result<String> {
    fetch_metrics_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_metrics`] under an explicit retry policy.
pub fn fetch_metrics_with(addr: &str, policy: &RetryPolicy) -> io::Result<String> {
    let body = admin_rpc(addr, policy, tag::METRICS_REQ, tag::METRICS_RESP)?;
    String::from_utf8(body).map_err(|_| bad("metrics not utf-8"))
}

/// Probes a daemon's liveness (the `health` RPC): returns its parsed
/// identity/uptime/epoch header. The balancer uses the same header shape for
/// its own heartbeat checks; everything in it is public (configuration and
/// coarse process age).
pub fn fetch_health(addr: &str) -> io::Result<crate::stats::StatsHeader> {
    fetch_health_with(addr, &RetryPolicy::admin_default())
}

/// [`fetch_health`] under an explicit retry policy.
pub fn fetch_health_with(
    addr: &str,
    policy: &RetryPolicy,
) -> io::Result<crate::stats::StatsHeader> {
    let body = admin_rpc(addr, policy, tag::HEALTH_REQ, tag::HEALTH_RESP)?;
    let text = String::from_utf8(body).map_err(|_| bad("health not utf-8"))?;
    crate::stats::parse_stats_header(&text).ok_or_else(|| bad("health body missing header"))
}

/// Asks a daemon to shut down gracefully; returns once it acknowledges.
/// Deliberately *not* retried beyond the dial: a shutdown that was delivered
/// but whose ack was lost must not be re-sent into a freshly restarted
/// daemon.
pub fn shutdown_daemon(addr: &str) -> io::Result<()> {
    let mut stream = admin_dial(addr, &RetryPolicy::admin_default())?;
    write_frame(&mut stream, tag::SHUTDOWN, b"")?;
    let (t, _) = read_frame(&mut stream)?;
    if t != tag::SHUTDOWN_ACK {
        return Err(bad("unexpected frame from daemon"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_classification_maps_kinds() {
        // The regression this guards: a socket read deadline surfaces as
        // WouldBlock on Unix and must NOT be treated as the peer hanging up.
        let timeout = io::Error::new(io::ErrorKind::WouldBlock, "read timed out");
        assert_eq!(classify_io_error(&timeout), ErrorClass::Timeout);
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "read timed out");
        assert_eq!(classify_io_error(&timeout), ErrorClass::Timeout);
        // A clean EOF mid-frame (read_exact with the peer closed) is a
        // disconnect, not a timeout and not fatal.
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "failed to fill whole buffer");
        assert_eq!(classify_io_error(&eof), ErrorClass::Disconnected);
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "reset by peer");
        assert_eq!(classify_io_error(&reset), ErrorClass::Disconnected);
        // Protocol-level corruption must not be retried.
        let corrupt = io::Error::new(io::ErrorKind::InvalidData, "bad frame length");
        assert_eq!(classify_io_error(&corrupt), ErrorClass::Fatal);
    }

    #[test]
    fn unavailable_roundtrips_through_io_error() {
        let u = Unavailable { epoch: 4, failed_suborams: vec![2] };
        let e = io::Error::other(u.clone());
        assert_eq!(unavailable_info(&e), Some(&u));
        let plain = io::Error::new(io::ErrorKind::TimedOut, "nope");
        assert_eq!(unavailable_info(&plain), None);
    }

    /// A stub listener that accepts one connection, reads the hello, then
    /// behaves per `mode`. Exercises the client's error mapping against real
    /// sockets.
    fn stub_listener(mode: &'static str) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream); // hello
            match mode {
                // Close immediately: the client's next read sees clean EOF.
                "eof" => drop(stream),
                // Read the request then go silent past the client deadline.
                "stall" => {
                    let _ = read_frame(&mut stream);
                    std::thread::sleep(Duration::from_millis(500));
                }
                _ => unreachable!(),
            }
        });
        (addr, handle)
    }

    fn test_config() -> ConnectConfig {
        ConnectConfig::new(0, 16).read_timeout(Duration::from_millis(50)).retry(RetryPolicy::once())
    }

    #[test]
    fn peer_eof_maps_to_disconnected_not_timeout() {
        let (addr, handle) = stub_listener("eof");
        let deploy = proto::deployment_key(1);
        let mut client =
            NetClient::connect_with(&addr.to_string(), &deploy, test_config()).unwrap();
        let err = client.read(0).unwrap_err();
        assert_eq!(
            classify_io_error(&err),
            ErrorClass::Disconnected,
            "peer close must classify as disconnect, got {err:?}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn silent_peer_maps_to_timeout_not_eof() {
        let (addr, handle) = stub_listener("stall");
        let deploy = proto::deployment_key(1);
        let mut client =
            NetClient::connect_with(&addr.to_string(), &deploy, test_config()).unwrap();
        let err = client.read(0).unwrap_err();
        assert_eq!(
            classify_io_error(&err),
            ErrorClass::Timeout,
            "a stalled peer must classify as timeout, got {err:?}"
        );
        handle.join().unwrap();
    }
}
