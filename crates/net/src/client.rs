//! Client and admin connections to a running cluster.
//!
//! [`NetClient`] is the blocking client API: it dials a load balancer, runs
//! the session hello, and then issues reads/writes over the sealed
//! client ↔ balancer link. The admin helpers ([`fetch_stats`],
//! [`shutdown_daemon`]) speak the plaintext control frames.

use crate::frame::{read_frame, write_frame};
use crate::proto::{self, tag, Hello, Role};
use snoopy_core::link::Link;
use snoopy_crypto::Key256;
use snoopy_enclave::wire::{Request, Response};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// A blocking client session with one load balancer.
pub struct NetClient {
    stream: TcpStream,
    req_link: Link,
    resp_link: Link,
    value_len: usize,
    seq: u64,
}

impl NetClient {
    /// Dials the balancer at `addr` (index `lb_index` in the manifest) and
    /// establishes a fresh session. `deploy` is the deployment key
    /// ([`proto::deployment_key`] of the manifest seed).
    pub fn connect(
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
        value_len: usize,
    ) -> io::Result<NetClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let hello = Hello::new(Role::Client, 0);
        write_frame(&mut stream, tag::HELLO, &hello.encode())?;
        let (req_link, resp_link) = proto::client_session_links(deploy, lb_index, hello.session);
        Ok(NetClient { stream, req_link, resp_link, value_len, seq: 0 })
    }

    /// Reads object `id`, blocking until the epoch containing the request
    /// commits.
    pub fn read(&mut self, id: u64) -> io::Result<Vec<u8>> {
        let seq = self.next_seq();
        let req = Request::read(id, self.value_len, 0, seq);
        Ok(self.roundtrip(req, seq)?.value)
    }

    /// Writes object `id`; returns the pre-write value (Snoopy's write
    /// semantics).
    pub fn write(&mut self, id: u64, payload: &[u8]) -> io::Result<Vec<u8>> {
        let seq = self.next_seq();
        let req = Request::write(id, payload, self.value_len, 0, seq);
        Ok(self.roundtrip(req, seq)?.value)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn roundtrip(&mut self, req: Request, seq: u64) -> io::Result<Response> {
        let sealed = self.req_link.seal(&[req]).map_err(|_| bad("request link failure"))?;
        write_frame(&mut self.stream, tag::CLIENT_REQ, &sealed.bytes)?;
        loop {
            let (t, body) = read_frame(&mut self.stream)?;
            if t != tag::CLIENT_RESP {
                return Err(bad("unexpected frame from balancer"));
            }
            let sealed = snoopy_crypto::aead::SealedBox { bytes: body };
            let batch = self
                .resp_link
                .open_responses(&sealed, self.value_len)
                .map_err(|_| bad("response link failure"))?;
            for resp in batch {
                if resp.seq == seq {
                    return Ok(resp);
                }
                // A stale response for an abandoned earlier request; skip.
            }
        }
    }
}

fn admin_dial(addr: &str) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write_frame(&mut stream, tag::HELLO, &Hello::new(Role::Admin, 0).encode())?;
    Ok(stream)
}

/// Fetches a daemon's per-link counters (the `stats` RPC) as its textual
/// form; parse with [`crate::stats::parse_stats`].
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    let mut stream = admin_dial(addr)?;
    write_frame(&mut stream, tag::STATS_REQ, b"")?;
    let (t, body) = read_frame(&mut stream)?;
    if t != tag::STATS_RESP {
        return Err(bad("unexpected frame from daemon"));
    }
    String::from_utf8(body).map_err(|_| bad("stats not utf-8"))
}

/// Fetches a daemon's Prometheus text exposition (the `metrics` RPC):
/// per-stage latency histograms, epoch/request counters, and every link
/// counter as labeled series. All series pass through the
/// [`snoopy_telemetry::Public`] leakage gate daemon-side.
pub fn fetch_metrics(addr: &str) -> io::Result<String> {
    let mut stream = admin_dial(addr)?;
    write_frame(&mut stream, tag::METRICS_REQ, b"")?;
    let (t, body) = read_frame(&mut stream)?;
    if t != tag::METRICS_RESP {
        return Err(bad("unexpected frame from daemon"));
    }
    String::from_utf8(body).map_err(|_| bad("metrics not utf-8"))
}

/// Asks a daemon to shut down gracefully; returns once it acknowledges.
pub fn shutdown_daemon(addr: &str) -> io::Result<()> {
    let mut stream = admin_dial(addr)?;
    write_frame(&mut stream, tag::SHUTDOWN, b"")?;
    let (t, _) = read_frame(&mut stream)?;
    if t != tag::SHUTDOWN_ACK {
        return Err(bad("unexpected frame from daemon"));
    }
    Ok(())
}
