//! The unified client API: [`SnoopyClient`] + builder.
//!
//! One facade serves both deployment planes. A client built with
//! [`SnoopyClientBuilder::connect_tcp`] speaks the sealed framed-AEAD
//! session protocol to a `snoopyd` balancer
//! ([`SnoopyClientBuilder::connect_tcp_multi`] does the same across a
//! cluster's full balancer set, with health-probed sticky failover); one
//! built with [`SnoopyClientBuilder::connect_cluster`] drives an
//! [`InProcessCluster`](snoopy_core::InProcessCluster) through its
//! [`ClientHandle`]. Both expose the same reads/writes, fail with the same
//! typed [`NetError`], and share the facade-level retry loop (classified by
//! [`NetError::class`]; only TCP transports can actually reconnect).
//!
//! The legacy [`crate::client::NetClient`] survives as a thin forwarding
//! shim over this facade and maps [`NetError`] back onto its historical
//! `io::Error` surface.

use crate::error::{ErrorClass, NetError};
use crate::frame::{read_frame, write_frame};
use crate::proto::{self, tag, Hello, Role};
use snoopy_core::link::Link;
use snoopy_core::{ClientHandle, RetryPolicy};
use snoopy_crypto::Key256;
use snoopy_enclave::wire::{Request, Response};
use snoopy_telemetry::{metrics, Public};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One client operation, as seen by a [`SessionTransport`]. Borrowed so the
/// facade's retry loop can re-issue the same operation without cloning the
/// payload per attempt.
#[derive(Clone, Copy, Debug)]
pub enum Op<'a> {
    /// Fetch the object with this id.
    Read {
        /// Object id.
        id: u64,
    },
    /// Store `payload` under this id (returns the pre-write value).
    Write {
        /// Object id.
        id: u64,
        /// New value; must be exactly the deployment's `value_len`.
        payload: &'a [u8],
    },
}

/// Where a [`SnoopyClient`] sends its operations. Implementations own
/// connection state; the facade owns sequencing and the retry loop.
pub trait SessionTransport: Send {
    /// Executes one operation, blocking until the epoch containing it
    /// commits (or fails). `seq` is the facade-assigned request sequence
    /// number; transports without wire-level matching may ignore it.
    fn execute(&mut self, op: Op<'_>, seq: u64) -> Result<Response, NetError>;

    /// Re-establishes the connection after a non-fatal failure. Transports
    /// with nothing to re-establish (the channel plane) succeed trivially.
    /// Multi-endpoint transports may come back connected to a *different*
    /// balancer (that is their failover path for timeouts and dead
    /// connections).
    fn reconnect(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    /// Tries to reposition to a *different* endpoint after a typed
    /// [`NetError::Unavailable`]: one balancer's degraded epoch (it cannot
    /// reach some subORAMs) does not mean another balancer's epochs degrade
    /// too. Returns `true` only if the transport actually moved, so the
    /// facade retries exactly when the retry would hit different fault
    /// domains — a single-endpoint transport keeps `Unavailable` fatal.
    fn fail_over(&mut self) -> bool {
        false
    }

    /// The composite epoch id the most recent successful [`Self::execute`]
    /// committed in, if the transport learns it (the TCP plane reads it off
    /// the response frame). `epoch / L` is the wall epoch and `epoch % L`
    /// the serving balancer — the paper's linearization coordinates.
    fn last_commit(&self) -> Option<u64> {
        None
    }
}

/// Builder for a [`SnoopyClient`]; absorbs the old `ConnectConfig` knobs.
#[derive(Clone, Debug)]
pub struct SnoopyClientBuilder {
    value_len: usize,
    read_timeout: Duration,
    retry: RetryPolicy,
}

impl SnoopyClientBuilder {
    /// Replaces the per-attempt socket read deadline (TCP only; the channel
    /// plane resolves every request in-process). Default 10 s.
    pub fn read_timeout(mut self, timeout: Duration) -> SnoopyClientBuilder {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the retry schedule for dials and request roundtrips.
    /// Default [`RetryPolicy::client_default`].
    pub fn retry(mut self, retry: RetryPolicy) -> SnoopyClientBuilder {
        self.retry = retry;
        self
    }

    /// Dials the `snoopyd` balancer at `addr` (index `lb_index` in the
    /// manifest); `deploy` is the deployment key
    /// ([`proto::deployment_key`] of the manifest seed). The dial runs
    /// under the builder's retry schedule.
    pub fn connect_tcp(
        self,
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
    ) -> Result<SnoopyClient, NetError> {
        let transport = TcpTransport::dial(addr, lb_index, deploy, &self)?;
        Ok(self.assemble(Box::new(transport)))
    }

    /// Dials a multi-balancer cluster: `addrs` are the `loadbalancer`
    /// manifest entries **in manifest order** (position = balancer index,
    /// which keys the per-balancer session link derivation). The client
    /// health-probes the endpoints in order, sticks to the first that
    /// accepts a session (stickiness keeps retried requests hitting the
    /// balancer whose reply cache has seen them), and fails over to the
    /// next live balancer when the current one times out, drops the
    /// connection, or reports its epoch `Unavailable`.
    ///
    /// Endpoint choice is public: which balancer a client talks to is
    /// visible on the wire anyway, so failover leaks nothing about request
    /// contents or the request→subORAM mapping.
    pub fn connect_tcp_multi(
        self,
        addrs: &[String],
        deploy: &Key256,
    ) -> Result<SnoopyClient, NetError> {
        self.connect_tcp_multi_preferring(addrs, 0, deploy)
    }

    /// [`Self::connect_tcp_multi`] with a preferred starting balancer: the
    /// health probe begins at index `preferred` (wrapping through the rest),
    /// so a fleet of clients can spread sticky sessions across the balancer
    /// set (`client_id % k`) while keeping failover to every other entry.
    /// `addrs` must still be the full manifest-ordered list — positions key
    /// the link derivation and epoch-id residue classes.
    pub fn connect_tcp_multi_preferring(
        self,
        addrs: &[String],
        preferred: usize,
        deploy: &Key256,
    ) -> Result<SnoopyClient, NetError> {
        let transport = MultiTcpTransport::dial(addrs, preferred, deploy, &self)?;
        Ok(self.assemble(Box::new(transport)))
    }

    /// Wraps an in-process cluster's [`ClientHandle`]: same API, no
    /// sockets. Epoch failures surface as [`NetError::Unavailable`] exactly
    /// like the TCP plane's failure frames.
    pub fn connect_cluster(self, handle: ClientHandle) -> SnoopyClient {
        self.assemble(Box::new(ClusterTransport { handle }))
    }

    /// Installs a custom transport (tests, future planes).
    pub fn connect_transport(self, transport: Box<dyn SessionTransport>) -> SnoopyClient {
        self.assemble(transport)
    }

    fn assemble(self, transport: Box<dyn SessionTransport>) -> SnoopyClient {
        SnoopyClient { transport, retry: self.retry, value_len: self.value_len, seq: 0 }
    }
}

/// A client session with a Snoopy deployment, over any transport.
pub struct SnoopyClient {
    transport: Box<dyn SessionTransport>,
    retry: RetryPolicy,
    value_len: usize,
    seq: u64,
}

impl SnoopyClient {
    /// Starts a builder. `value_len` is the deployment's public object
    /// size.
    pub fn builder(value_len: usize) -> SnoopyClientBuilder {
        SnoopyClientBuilder {
            value_len,
            read_timeout: Duration::from_secs(10),
            retry: RetryPolicy::client_default(),
        }
    }

    /// The deployment's public object size.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Reads object `id`, blocking until the epoch containing the request
    /// commits. Non-fatal failures (timeout, disconnect) are retried under
    /// the builder's [`RetryPolicy`], reconnecting as needed.
    pub fn read(&mut self, id: u64) -> Result<Vec<u8>, NetError> {
        self.call(Op::Read { id }).map(|resp| resp.value)
    }

    /// Writes object `id`; returns the pre-write value (Snoopy's write
    /// semantics). Retried writes are at-least-once: if the first attempt's
    /// epoch committed but the response was lost, the retry re-executes the
    /// write in a later epoch and the returned pre-write value reflects the
    /// first write.
    pub fn write(&mut self, id: u64, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call(Op::Write { id, payload }).map(|resp| resp.value)
    }

    /// [`Self::read`], also returning the composite epoch id the read
    /// committed in when the transport exposes it (TCP sessions do; the
    /// channel plane returns `None`). The id is already wire-observable —
    /// balancers stamp it on every batch — so exposing it leaks nothing new.
    pub fn read_stamped(&mut self, id: u64) -> Result<(Vec<u8>, Option<u64>), NetError> {
        let value = self.call(Op::Read { id })?.value;
        Ok((value, self.transport.last_commit()))
    }

    /// [`Self::write`] with the commit epoch id, like [`Self::read_stamped`].
    pub fn write_stamped(
        &mut self,
        id: u64,
        payload: &[u8],
    ) -> Result<(Vec<u8>, Option<u64>), NetError> {
        let value = self.call(Op::Write { id, payload })?.value;
        Ok((value, self.transport.last_commit()))
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The facade-level retry loop: classify, back off, reconnect, re-issue.
    /// Fatal errors (typed `Unavailable`, protocol violations) return
    /// immediately — with one carve-out: an `Unavailable` is retried when the
    /// transport [`SessionTransport::fail_over`]s to a *different* balancer,
    /// because another balancer's epochs run through independent fault
    /// domains. Single-endpoint transports never fail over, so their fatal
    /// semantics are unchanged.
    fn call(&mut self, op: Op<'_>) -> Result<Response, NetError> {
        let seq = self.next_seq();
        let policy = self.retry.clone();
        let mut attempt = 0u32;
        loop {
            let err = match self.transport.execute(op, seq) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let next = attempt + 1;
            if err.class() == ErrorClass::Fatal {
                let repositioned = matches!(err, NetError::Unavailable(_))
                    && policy.allows(next)
                    && self.transport.fail_over();
                if !repositioned {
                    return Err(err);
                }
                attempt = next;
                count_retry();
                continue;
            }
            if !policy.allows(next) {
                return Err(err);
            }
            std::thread::sleep(policy.backoff(next));
            attempt = next;
            count_retry();
            if let Err(redial) = self.transport.reconnect() {
                // Keep retrying through dial failures until attempts run out.
                if !policy.allows(attempt + 1) {
                    return Err(redial);
                }
            }
        }
    }
}

/// The sealed framed-AEAD session transport to a `snoopyd` balancer.
struct TcpTransport {
    stream: TcpStream,
    req_link: Link,
    resp_link: Link,
    addr: String,
    deploy: Key256,
    lb_index: usize,
    value_len: usize,
    read_timeout: Duration,
    last_epoch: Option<u64>,
}

impl TcpTransport {
    fn dial(
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
        builder: &SnoopyClientBuilder,
    ) -> Result<TcpTransport, NetError> {
        let (stream, req_link, resp_link) = builder
            .retry
            .run(|attempt| {
                if attempt > 0 {
                    count_retry();
                }
                dial_session(addr, lb_index, deploy, builder.read_timeout)
            })
            .map_err(NetError::from_io)?;
        Ok(TcpTransport {
            stream,
            req_link,
            resp_link,
            addr: addr.to_string(),
            deploy: deploy.clone(),
            lb_index,
            value_len: builder.value_len,
            read_timeout: builder.read_timeout,
            last_epoch: None,
        })
    }
}

impl SessionTransport for TcpTransport {
    fn execute(&mut self, op: Op<'_>, seq: u64) -> Result<Response, NetError> {
        let req = match op {
            Op::Read { id } => Request::read(id, self.value_len, 0, seq),
            Op::Write { id, payload } => Request::write(id, payload, self.value_len, 0, seq),
        };
        let sealed =
            self.req_link.seal(&[req]).map_err(|_| NetError::protocol("request link failure"))?;
        write_frame(&mut self.stream, tag::CLIENT_REQ, &sealed.bytes)?;
        loop {
            let (t, body) = read_frame(&mut self.stream)?;
            match t {
                tag::CLIENT_RESP => {
                    let (epoch, sealed) = proto::decode_epoch_sealed(&body)
                        .ok_or_else(|| NetError::protocol("short CLIENT_RESP frame"))?;
                    let batch = self
                        .resp_link
                        .open_responses(&sealed, self.value_len)
                        .map_err(|_| NetError::protocol("response link failure"))?;
                    for resp in batch {
                        if resp.seq == seq {
                            self.last_epoch = Some(epoch);
                            return Ok(resp);
                        }
                        // A stale response for an abandoned earlier request.
                    }
                }
                tag::CLIENT_FAIL => {
                    let (fail_seq, err) = NetError::from_client_fail(&body)?;
                    if fail_seq == seq {
                        return Err(err);
                    }
                    // A stale failure for an abandoned earlier request.
                }
                _ => return Err(NetError::protocol("unexpected frame from balancer")),
            }
        }
    }

    /// Re-dials and installs a fresh session (new session id → new link
    /// keys; the old session's sequence numbers die with it).
    fn reconnect(&mut self) -> Result<(), NetError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let (stream, req_link, resp_link) =
            dial_session(&self.addr, self.lb_index, &self.deploy, self.read_timeout)?;
        self.stream = stream;
        self.req_link = req_link;
        self.resp_link = resp_link;
        Ok(())
    }

    fn last_commit(&self) -> Option<u64> {
        self.last_epoch
    }
}

/// How long a balancer endpoint sits out after a failed dial before the
/// client probes it again. Short enough that a restarted balancer rejoins
/// the rotation within a few requests; long enough that a dead one is not
/// re-dialed on every operation.
const ENDPOINT_COOLDOWN: Duration = Duration::from_millis(500);

/// A sticky multi-endpoint session transport over `k` balancers.
///
/// Holds one live [`TcpTransport`] at a time (the *current* endpoint) plus
/// the full endpoint list. Reconnects prefer the current endpoint (reply
/// cache locality); if it cannot be re-dialed it is put on cooldown and the
/// probe rotates to the next balancer. [`SessionTransport::fail_over`]
/// deliberately skips the current endpoint first, because it is called when
/// the current balancer is up but its epochs are failing.
struct MultiTcpTransport {
    inner: TcpTransport,
    addrs: Vec<String>,
    cooldown_until: Vec<Option<std::time::Instant>>,
    current: usize,
}

impl MultiTcpTransport {
    fn dial(
        addrs: &[String],
        preferred: usize,
        deploy: &Key256,
        builder: &SnoopyClientBuilder,
    ) -> Result<MultiTcpTransport, NetError> {
        if addrs.is_empty() {
            return Err(NetError::protocol("empty balancer endpoint set"));
        }
        let start = preferred % addrs.len();
        let (index, stream, req_link, resp_link) = builder
            .retry
            .run(|attempt| {
                if attempt > 0 {
                    count_retry();
                }
                probe_endpoints(
                    addrs,
                    &mut vec![None; addrs.len()],
                    start,
                    deploy,
                    builder.read_timeout,
                )
            })
            .map_err(NetError::from_io)?;
        let inner = TcpTransport {
            stream,
            req_link,
            resp_link,
            addr: addrs[index].clone(),
            deploy: deploy.clone(),
            lb_index: index,
            value_len: builder.value_len,
            read_timeout: builder.read_timeout,
            last_epoch: None,
        };
        Ok(MultiTcpTransport {
            inner,
            addrs: addrs.to_vec(),
            cooldown_until: vec![None; addrs.len()],
            current: index,
        })
    }

    /// Installs `index` as the current endpoint with a fresh session.
    fn install(&mut self, index: usize, stream: TcpStream, req_link: Link, resp_link: Link) {
        let _ = self.inner.stream.shutdown(std::net::Shutdown::Both);
        self.inner.stream = stream;
        self.inner.req_link = req_link;
        self.inner.resp_link = resp_link;
        self.inner.addr = self.addrs[index].clone();
        self.inner.lb_index = index;
        self.current = index;
        self.cooldown_until[index] = None;
    }
}

impl SessionTransport for MultiTcpTransport {
    fn execute(&mut self, op: Op<'_>, seq: u64) -> Result<Response, NetError> {
        self.inner.execute(op, seq)
    }

    /// Re-dials starting from the *current* endpoint (stickiness), rotating
    /// through the remaining balancers if it is down. This is the failover
    /// path for timeouts and dead connections: a SIGKILLed balancer refuses
    /// the re-dial, goes on cooldown, and the session lands on a survivor.
    fn reconnect(&mut self) -> Result<(), NetError> {
        let start = self.current;
        let (index, stream, req_link, resp_link) = probe_endpoints(
            &self.addrs,
            &mut self.cooldown_until,
            start,
            &self.inner.deploy,
            self.inner.read_timeout,
        )?;
        self.install(index, stream, req_link, resp_link);
        Ok(())
    }

    /// Repositions to a different balancer after an `Unavailable`: the
    /// current balancer answered (it is alive) but its epoch degraded, so
    /// the probe starts at the *next* endpoint. Returns `false` — keeping
    /// the error fatal — when no other balancer accepts a session.
    fn fail_over(&mut self) -> bool {
        if self.addrs.len() < 2 {
            return false;
        }
        let prev = self.current;
        self.cooldown_until[prev] = Some(std::time::Instant::now() + ENDPOINT_COOLDOWN);
        let start = (prev + 1) % self.addrs.len();
        match probe_endpoints(
            &self.addrs,
            &mut self.cooldown_until,
            start,
            &self.inner.deploy,
            self.inner.read_timeout,
        ) {
            Ok((index, stream, req_link, resp_link)) if index != prev => {
                self.install(index, stream, req_link, resp_link);
                true
            }
            _ => false,
        }
    }

    fn last_commit(&self) -> Option<u64> {
        self.inner.last_epoch
    }
}

/// Probes `addrs[start], addrs[start+1], …` (wrapping) for a balancer that
/// accepts a client session. Endpoints on cooldown are skipped on the first
/// pass; if *every* endpoint was cooling, a fallback pass dials them anyway
/// in least-recently-cooled order (ascending cooldown expiry), so the
/// all-cooling window neither busy-spins nor hard-fails without a dial
/// attempt, and the endpoint most likely to have recovered is tried first.
/// A failed dial puts the endpoint on cooldown; a success clears it.
fn probe_endpoints(
    addrs: &[String],
    cooldown_until: &mut [Option<std::time::Instant>],
    start: usize,
    deploy: &Key256,
    read_timeout: Duration,
) -> io::Result<(usize, TcpStream, Link, Link)> {
    let now = std::time::Instant::now();
    let mut last_err: Option<io::Error> = None;
    let mut attempted = false;
    for offset in 0..addrs.len() {
        let index = (start + offset) % addrs.len();
        if cooldown_until[index].is_some_and(|until| until > now) {
            continue;
        }
        attempted = true;
        match dial_session(&addrs[index], index, deploy, read_timeout) {
            Ok((stream, req_link, resp_link)) => {
                cooldown_until[index] = None;
                return Ok((index, stream, req_link, resp_link));
            }
            Err(e) => {
                cooldown_until[index] = Some(now + ENDPOINT_COOLDOWN);
                last_err = Some(e);
            }
        }
    }
    if !attempted {
        // Every endpoint is on cooldown. Dialing nothing would strand the
        // client until a cooldown lapses, so fall back to dialing the
        // least-recently-cooled endpoint first (the one whose cooldown
        // expires soonest) rather than blind rotation order.
        for index in cooling_order(cooldown_until, start) {
            match dial_session(&addrs[index], index, deploy, read_timeout) {
                Ok((stream, req_link, resp_link)) => {
                    cooldown_until[index] = None;
                    return Ok((index, stream, req_link, resp_link));
                }
                Err(e) => {
                    cooldown_until[index] = Some(now + ENDPOINT_COOLDOWN);
                    last_err = Some(e);
                }
            }
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no balancer reachable")))
}

/// Endpoint indices ordered by ascending cooldown expiry (least recently
/// cooled first); rotation order from `start` breaks ties, so the fallback
/// stays deterministic when several endpoints were cooled together.
fn cooling_order(cooldown_until: &[Option<std::time::Instant>], start: usize) -> Vec<usize> {
    let n = cooldown_until.len();
    let mut order: Vec<usize> = (0..n).map(|offset| (start + offset) % n).collect();
    order.sort_by_key(|&i| cooldown_until[i]);
    order
}

/// The in-process channel transport: delegates to [`ClientHandle`]. The
/// channel plane matches requests internally, so `seq` is unused, and there
/// is no connection to lose — every failure is a typed epoch failure.
struct ClusterTransport {
    handle: ClientHandle,
}

impl SessionTransport for ClusterTransport {
    fn execute(&mut self, op: Op<'_>, _seq: u64) -> Result<Response, NetError> {
        let result = match op {
            Op::Read { id } => self.handle.try_read(id),
            Op::Write { id, payload } => self.handle.try_write(id, payload),
        };
        result.map_err(NetError::Unavailable)
    }
}

/// Dials `addr`, runs the client hello, and derives the session links.
pub(crate) fn dial_session(
    addr: &str,
    lb_index: usize,
    deploy: &Key256,
    read_timeout: Duration,
) -> io::Result<(TcpStream, Link, Link)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let hello = Hello::new(Role::Client, 0);
    write_frame(&mut stream, tag::HELLO, &hello.encode())?;
    let (req_link, resp_link) = proto::client_session_links(deploy, lb_index, hello.session);
    Ok((stream, req_link, resp_link))
}

pub(crate) fn count_retry() {
    metrics::global()
        .counter(metrics::names::RETRIES_TOTAL, "operation retries under a RetryPolicy")
        .inc(Public::wire_observable(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// A scripted transport: pops the next result per call, counting
    /// executes and reconnects. `failovers_left` scripts how many times
    /// [`SessionTransport::fail_over`] succeeds (repositions).
    struct ScriptedTransport {
        script: Vec<Result<Response, NetError>>,
        executes: Arc<AtomicU32>,
        reconnects: Arc<AtomicU32>,
        failovers_left: u32,
    }

    impl SessionTransport for ScriptedTransport {
        fn execute(&mut self, _op: Op<'_>, seq: u64) -> Result<Response, NetError> {
            self.executes.fetch_add(1, Ordering::SeqCst);
            match self.script.remove(0) {
                Ok(mut resp) => {
                    resp.seq = seq;
                    Ok(resp)
                }
                Err(e) => Err(e),
            }
        }

        fn reconnect(&mut self) -> Result<(), NetError> {
            self.reconnects.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }

        fn fail_over(&mut self) -> bool {
            if self.failovers_left == 0 {
                return false;
            }
            self.failovers_left -= 1;
            true
        }
    }

    fn ok_response(value: &[u8]) -> Result<Response, NetError> {
        Ok(Response { id: 1, value: value.to_vec(), client: 0, seq: 0 })
    }

    fn harness(
        script: Vec<Result<Response, NetError>>,
        retry: RetryPolicy,
    ) -> (SnoopyClient, Arc<AtomicU32>, Arc<AtomicU32>) {
        let executes = Arc::new(AtomicU32::new(0));
        let reconnects = Arc::new(AtomicU32::new(0));
        let transport = ScriptedTransport {
            script,
            executes: executes.clone(),
            reconnects: reconnects.clone(),
            failovers_left: 0,
        };
        let client = SnoopyClient::builder(4).retry(retry).connect_transport(Box::new(transport));
        (client, executes, reconnects)
    }

    #[test]
    fn facade_retries_timeouts_and_reconnects() {
        let timeout = NetError::Timeout(io::ErrorKind::WouldBlock.into());
        let (mut client, executes, reconnects) =
            harness(vec![Err(timeout), ok_response(b"abcd")], RetryPolicy::client_default());
        assert_eq!(client.read(1).unwrap(), b"abcd");
        assert_eq!(executes.load(Ordering::SeqCst), 2);
        assert_eq!(reconnects.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn facade_never_retries_fatal_errors() {
        let u = snoopy_core::Unavailable { epoch: 2, failed_suborams: vec![0] };
        let (mut client, executes, _) = harness(
            vec![Err(NetError::Unavailable(u.clone())), ok_response(b"abcd")],
            RetryPolicy::client_default(),
        );
        match client.write(1, b"abcd") {
            Err(NetError::Unavailable(back)) => assert_eq!(back, u),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(executes.load(Ordering::SeqCst), 1, "fatal errors must not be retried");
    }

    #[test]
    fn facade_respects_the_retry_budget() {
        let errs: Vec<_> =
            (0..4).map(|_| Err(NetError::Timeout(io::ErrorKind::TimedOut.into()))).collect();
        let (mut client, executes, _) = harness(errs, RetryPolicy::once());
        assert!(matches!(client.read(1), Err(NetError::Timeout(_))));
        assert_eq!(executes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn facade_retries_unavailable_only_across_a_failover() {
        let u = snoopy_core::Unavailable { epoch: 4, failed_suborams: vec![1] };
        let executes = Arc::new(AtomicU32::new(0));
        let reconnects = Arc::new(AtomicU32::new(0));
        let transport = ScriptedTransport {
            script: vec![Err(NetError::Unavailable(u)), ok_response(b"abcd")],
            executes: executes.clone(),
            reconnects: reconnects.clone(),
            failovers_left: 1,
        };
        let mut client = SnoopyClient::builder(4)
            .retry(RetryPolicy::client_default())
            .connect_transport(Box::new(transport));
        assert_eq!(client.write(1, b"abcd").unwrap(), b"abcd");
        assert_eq!(executes.load(Ordering::SeqCst), 2, "retried once on the other balancer");
        assert_eq!(reconnects.load(Ordering::SeqCst), 0, "failover repositions without reconnect");
    }

    #[test]
    fn facade_gives_up_on_unavailable_when_failover_is_exhausted() {
        let u = snoopy_core::Unavailable { epoch: 4, failed_suborams: vec![1] };
        let executes = Arc::new(AtomicU32::new(0));
        let transport = ScriptedTransport {
            script: vec![
                Err(NetError::Unavailable(u.clone())),
                Err(NetError::Unavailable(u.clone())),
                ok_response(b"abcd"),
            ],
            executes: executes.clone(),
            reconnects: Arc::new(AtomicU32::new(0)),
            failovers_left: 1,
        };
        let mut client = SnoopyClient::builder(4)
            .retry(RetryPolicy::client_default())
            .connect_transport(Box::new(transport));
        match client.read(1) {
            Err(NetError::Unavailable(back)) => assert_eq!(back, u),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(
            executes.load(Ordering::SeqCst),
            2,
            "second Unavailable is fatal once no other balancer remains"
        );
    }

    #[test]
    fn facade_assigns_increasing_seqs() {
        let (mut client, _, _) =
            harness(vec![ok_response(b"aaaa"), ok_response(b"bbbb")], RetryPolicy::once());
        client.read(1).unwrap();
        client.read(2).unwrap();
        assert_eq!(client.seq, 2);
    }

    #[test]
    fn cooling_order_sorts_by_expiry_then_rotation() {
        let now = std::time::Instant::now();
        let cools = vec![
            Some(now + Duration::from_millis(400)),
            Some(now + Duration::from_millis(100)),
            Some(now + Duration::from_millis(250)),
        ];
        assert_eq!(cooling_order(&cools, 0), vec![1, 2, 0]);
        // Ties fall back to rotation order from `start`.
        let tied = vec![Some(now), Some(now), Some(now)];
        assert_eq!(cooling_order(&tied, 2), vec![2, 0, 1]);
        // Cleared endpoints (None) sort before any live cooldown.
        let mixed = vec![Some(now + Duration::from_millis(100)), None];
        assert_eq!(cooling_order(&mixed, 0), vec![1, 0]);
    }

    /// The all-cooling window: every endpoint is on its 500 ms cooldown, but
    /// the probe must still dial (no instant hard-fail, no busy wait) and
    /// must start with the least-recently-cooled endpoint, not rotation
    /// order. Endpoint 0 comes first in rotation but was cooled most
    /// recently; endpoint 1's cooldown expires soonest, so the probe must
    /// land there even though both listeners would accept.
    #[test]
    fn all_cooling_probe_prefers_least_recently_cooled_endpoint() {
        let listeners: Vec<std::net::TcpListener> =
            (0..2).map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<String> =
            listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
        let now = std::time::Instant::now();
        let mut cools =
            vec![Some(now + Duration::from_millis(400)), Some(now + Duration::from_millis(100))];
        let deploy = proto::deployment_key(3);
        let (index, _stream, _rl, _wl) =
            probe_endpoints(&addrs, &mut cools, 0, &deploy, Duration::from_millis(200))
                .expect("all-cooling fallback must still dial");
        assert_eq!(index, 1, "must dial the endpoint whose cooldown expires soonest");
        assert_eq!(cools[1], None, "a successful dial clears the endpoint's cooldown");
    }

    /// All endpoints cooling *and* dead: the probe returns the dial error
    /// (after really attempting each endpoint once) instead of the generic
    /// "no balancer reachable" non-attempt, and refreshes the cooldowns.
    #[test]
    fn all_cooling_probe_fails_with_dial_error_when_all_dead() {
        // Bind-then-drop yields addresses that refuse connections.
        let addrs: Vec<String> = (0..2)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().to_string()
            })
            .collect();
        let now = std::time::Instant::now();
        let mut cools = vec![Some(now + Duration::from_millis(50)); 2];
        let deploy = proto::deployment_key(3);
        let err = match probe_endpoints(&addrs, &mut cools, 0, &deploy, Duration::from_millis(200))
        {
            Err(err) => err,
            Ok(_) => panic!("dead endpoints must fail"),
        };
        assert_ne!(
            err.kind(),
            io::ErrorKind::NotConnected,
            "the error must come from a real dial attempt, got {err:?}"
        );
        assert!(
            cools.iter().all(|c| c.is_some_and(|until| until > now)),
            "failed fallback dials must refresh the cooldowns"
        );
    }

    #[test]
    fn cluster_transport_shares_the_facade() {
        use snoopy_enclave::wire::StoredObject;
        const VLEN: usize = 8;
        let cfg = snoopy_core::SnoopyConfig::with_machines(1, 2).value_len(VLEN);
        let objects = (0..16u64).map(|i| StoredObject::new(i, &[0u8; 1], VLEN)).collect();
        let mut cluster = snoopy_core::InProcessCluster::start(cfg, objects, 11);
        cluster.start_ticker(Duration::from_millis(5));
        let mut client = SnoopyClient::builder(VLEN).connect_cluster(cluster.client());
        let before = client.write(3, &[7u8; VLEN]).unwrap();
        assert_eq!(before, vec![0u8; VLEN]);
        assert_eq!(client.read(3).unwrap(), vec![7u8; VLEN]);
        cluster.shutdown();
    }
}
