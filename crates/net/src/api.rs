//! The unified client API: [`SnoopyClient`] + builder.
//!
//! One facade serves both deployment planes. A client built with
//! [`SnoopyClientBuilder::connect_tcp`] speaks the sealed framed-AEAD
//! session protocol to a `snoopyd` balancer; one built with
//! [`SnoopyClientBuilder::connect_cluster`] drives an
//! [`InProcessCluster`](snoopy_core::InProcessCluster) through its
//! [`ClientHandle`]. Both expose the same reads/writes, fail with the same
//! typed [`NetError`], and share the facade-level retry loop (classified by
//! [`NetError::class`]; only TCP transports can actually reconnect).
//!
//! The legacy [`crate::client::NetClient`] survives as a thin forwarding
//! shim over this facade and maps [`NetError`] back onto its historical
//! `io::Error` surface.

use crate::error::{ErrorClass, NetError};
use crate::frame::{read_frame, write_frame};
use crate::proto::{self, tag, Hello, Role};
use snoopy_core::link::Link;
use snoopy_core::{ClientHandle, RetryPolicy};
use snoopy_crypto::Key256;
use snoopy_enclave::wire::{Request, Response};
use snoopy_telemetry::{metrics, Public};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One client operation, as seen by a [`SessionTransport`]. Borrowed so the
/// facade's retry loop can re-issue the same operation without cloning the
/// payload per attempt.
#[derive(Clone, Copy, Debug)]
pub enum Op<'a> {
    /// Fetch the object with this id.
    Read {
        /// Object id.
        id: u64,
    },
    /// Store `payload` under this id (returns the pre-write value).
    Write {
        /// Object id.
        id: u64,
        /// New value; must be exactly the deployment's `value_len`.
        payload: &'a [u8],
    },
}

/// Where a [`SnoopyClient`] sends its operations. Implementations own
/// connection state; the facade owns sequencing and the retry loop.
pub trait SessionTransport: Send {
    /// Executes one operation, blocking until the epoch containing it
    /// commits (or fails). `seq` is the facade-assigned request sequence
    /// number; transports without wire-level matching may ignore it.
    fn execute(&mut self, op: Op<'_>, seq: u64) -> Result<Response, NetError>;

    /// Re-establishes the connection after a non-fatal failure. Transports
    /// with nothing to re-establish (the channel plane) succeed trivially.
    fn reconnect(&mut self) -> Result<(), NetError> {
        Ok(())
    }
}

/// Builder for a [`SnoopyClient`]; absorbs the old `ConnectConfig` knobs.
#[derive(Clone, Debug)]
pub struct SnoopyClientBuilder {
    value_len: usize,
    read_timeout: Duration,
    retry: RetryPolicy,
}

impl SnoopyClientBuilder {
    /// Replaces the per-attempt socket read deadline (TCP only; the channel
    /// plane resolves every request in-process). Default 10 s.
    pub fn read_timeout(mut self, timeout: Duration) -> SnoopyClientBuilder {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the retry schedule for dials and request roundtrips.
    /// Default [`RetryPolicy::client_default`].
    pub fn retry(mut self, retry: RetryPolicy) -> SnoopyClientBuilder {
        self.retry = retry;
        self
    }

    /// Dials the `snoopyd` balancer at `addr` (index `lb_index` in the
    /// manifest); `deploy` is the deployment key
    /// ([`proto::deployment_key`] of the manifest seed). The dial runs
    /// under the builder's retry schedule.
    pub fn connect_tcp(
        self,
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
    ) -> Result<SnoopyClient, NetError> {
        let transport = TcpTransport::dial(addr, lb_index, deploy, &self)?;
        Ok(self.assemble(Box::new(transport)))
    }

    /// Wraps an in-process cluster's [`ClientHandle`]: same API, no
    /// sockets. Epoch failures surface as [`NetError::Unavailable`] exactly
    /// like the TCP plane's failure frames.
    pub fn connect_cluster(self, handle: ClientHandle) -> SnoopyClient {
        self.assemble(Box::new(ClusterTransport { handle }))
    }

    /// Installs a custom transport (tests, future planes).
    pub fn connect_transport(self, transport: Box<dyn SessionTransport>) -> SnoopyClient {
        self.assemble(transport)
    }

    fn assemble(self, transport: Box<dyn SessionTransport>) -> SnoopyClient {
        SnoopyClient { transport, retry: self.retry, value_len: self.value_len, seq: 0 }
    }
}

/// A client session with a Snoopy deployment, over any transport.
pub struct SnoopyClient {
    transport: Box<dyn SessionTransport>,
    retry: RetryPolicy,
    value_len: usize,
    seq: u64,
}

impl SnoopyClient {
    /// Starts a builder. `value_len` is the deployment's public object
    /// size.
    pub fn builder(value_len: usize) -> SnoopyClientBuilder {
        SnoopyClientBuilder {
            value_len,
            read_timeout: Duration::from_secs(10),
            retry: RetryPolicy::client_default(),
        }
    }

    /// The deployment's public object size.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Reads object `id`, blocking until the epoch containing the request
    /// commits. Non-fatal failures (timeout, disconnect) are retried under
    /// the builder's [`RetryPolicy`], reconnecting as needed.
    pub fn read(&mut self, id: u64) -> Result<Vec<u8>, NetError> {
        self.call(Op::Read { id }).map(|resp| resp.value)
    }

    /// Writes object `id`; returns the pre-write value (Snoopy's write
    /// semantics). Retried writes are at-least-once: if the first attempt's
    /// epoch committed but the response was lost, the retry re-executes the
    /// write in a later epoch and the returned pre-write value reflects the
    /// first write.
    pub fn write(&mut self, id: u64, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call(Op::Write { id, payload }).map(|resp| resp.value)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The facade-level retry loop: classify, back off, reconnect, re-issue.
    /// Fatal errors (typed `Unavailable`, protocol violations) return
    /// immediately — retrying the same bytes cannot help.
    fn call(&mut self, op: Op<'_>) -> Result<Response, NetError> {
        let seq = self.next_seq();
        let policy = self.retry.clone();
        let mut attempt = 0u32;
        loop {
            let err = match self.transport.execute(op, seq) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let next = attempt + 1;
            if err.class() == ErrorClass::Fatal || !policy.allows(next) {
                return Err(err);
            }
            std::thread::sleep(policy.backoff(next));
            attempt = next;
            count_retry();
            if let Err(redial) = self.transport.reconnect() {
                // Keep retrying through dial failures until attempts run out.
                if !policy.allows(attempt + 1) {
                    return Err(redial);
                }
            }
        }
    }
}

/// The sealed framed-AEAD session transport to a `snoopyd` balancer.
struct TcpTransport {
    stream: TcpStream,
    req_link: Link,
    resp_link: Link,
    addr: String,
    deploy: Key256,
    lb_index: usize,
    value_len: usize,
    read_timeout: Duration,
}

impl TcpTransport {
    fn dial(
        addr: &str,
        lb_index: usize,
        deploy: &Key256,
        builder: &SnoopyClientBuilder,
    ) -> Result<TcpTransport, NetError> {
        let (stream, req_link, resp_link) = builder
            .retry
            .run(|attempt| {
                if attempt > 0 {
                    count_retry();
                }
                dial_session(addr, lb_index, deploy, builder.read_timeout)
            })
            .map_err(NetError::from_io)?;
        Ok(TcpTransport {
            stream,
            req_link,
            resp_link,
            addr: addr.to_string(),
            deploy: deploy.clone(),
            lb_index,
            value_len: builder.value_len,
            read_timeout: builder.read_timeout,
        })
    }
}

impl SessionTransport for TcpTransport {
    fn execute(&mut self, op: Op<'_>, seq: u64) -> Result<Response, NetError> {
        let req = match op {
            Op::Read { id } => Request::read(id, self.value_len, 0, seq),
            Op::Write { id, payload } => Request::write(id, payload, self.value_len, 0, seq),
        };
        let sealed =
            self.req_link.seal(&[req]).map_err(|_| NetError::protocol("request link failure"))?;
        write_frame(&mut self.stream, tag::CLIENT_REQ, &sealed.bytes)?;
        loop {
            let (t, body) = read_frame(&mut self.stream)?;
            match t {
                tag::CLIENT_RESP => {
                    let sealed = snoopy_crypto::aead::SealedBox { bytes: body };
                    let batch = self
                        .resp_link
                        .open_responses(&sealed, self.value_len)
                        .map_err(|_| NetError::protocol("response link failure"))?;
                    for resp in batch {
                        if resp.seq == seq {
                            return Ok(resp);
                        }
                        // A stale response for an abandoned earlier request.
                    }
                }
                tag::CLIENT_FAIL => {
                    let (fail_seq, err) = NetError::from_client_fail(&body)?;
                    if fail_seq == seq {
                        return Err(err);
                    }
                    // A stale failure for an abandoned earlier request.
                }
                _ => return Err(NetError::protocol("unexpected frame from balancer")),
            }
        }
    }

    /// Re-dials and installs a fresh session (new session id → new link
    /// keys; the old session's sequence numbers die with it).
    fn reconnect(&mut self) -> Result<(), NetError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let (stream, req_link, resp_link) =
            dial_session(&self.addr, self.lb_index, &self.deploy, self.read_timeout)?;
        self.stream = stream;
        self.req_link = req_link;
        self.resp_link = resp_link;
        Ok(())
    }
}

/// The in-process channel transport: delegates to [`ClientHandle`]. The
/// channel plane matches requests internally, so `seq` is unused, and there
/// is no connection to lose — every failure is a typed epoch failure.
struct ClusterTransport {
    handle: ClientHandle,
}

impl SessionTransport for ClusterTransport {
    fn execute(&mut self, op: Op<'_>, _seq: u64) -> Result<Response, NetError> {
        let result = match op {
            Op::Read { id } => self.handle.try_read(id),
            Op::Write { id, payload } => self.handle.try_write(id, payload),
        };
        result.map_err(NetError::Unavailable)
    }
}

/// Dials `addr`, runs the client hello, and derives the session links.
pub(crate) fn dial_session(
    addr: &str,
    lb_index: usize,
    deploy: &Key256,
    read_timeout: Duration,
) -> io::Result<(TcpStream, Link, Link)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let hello = Hello::new(Role::Client, 0);
    write_frame(&mut stream, tag::HELLO, &hello.encode())?;
    let (req_link, resp_link) = proto::client_session_links(deploy, lb_index, hello.session);
    Ok((stream, req_link, resp_link))
}

pub(crate) fn count_retry() {
    metrics::global()
        .counter(metrics::names::RETRIES_TOTAL, "operation retries under a RetryPolicy")
        .inc(Public::wire_observable(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// A scripted transport: pops the next result per call, counting
    /// executes and reconnects.
    struct ScriptedTransport {
        script: Vec<Result<Response, NetError>>,
        executes: Arc<AtomicU32>,
        reconnects: Arc<AtomicU32>,
    }

    impl SessionTransport for ScriptedTransport {
        fn execute(&mut self, _op: Op<'_>, seq: u64) -> Result<Response, NetError> {
            self.executes.fetch_add(1, Ordering::SeqCst);
            match self.script.remove(0) {
                Ok(mut resp) => {
                    resp.seq = seq;
                    Ok(resp)
                }
                Err(e) => Err(e),
            }
        }

        fn reconnect(&mut self) -> Result<(), NetError> {
            self.reconnects.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn ok_response(value: &[u8]) -> Result<Response, NetError> {
        Ok(Response { id: 1, value: value.to_vec(), client: 0, seq: 0 })
    }

    fn harness(
        script: Vec<Result<Response, NetError>>,
        retry: RetryPolicy,
    ) -> (SnoopyClient, Arc<AtomicU32>, Arc<AtomicU32>) {
        let executes = Arc::new(AtomicU32::new(0));
        let reconnects = Arc::new(AtomicU32::new(0));
        let transport = ScriptedTransport {
            script,
            executes: executes.clone(),
            reconnects: reconnects.clone(),
        };
        let client = SnoopyClient::builder(4).retry(retry).connect_transport(Box::new(transport));
        (client, executes, reconnects)
    }

    #[test]
    fn facade_retries_timeouts_and_reconnects() {
        let timeout = NetError::Timeout(io::ErrorKind::WouldBlock.into());
        let (mut client, executes, reconnects) =
            harness(vec![Err(timeout), ok_response(b"abcd")], RetryPolicy::client_default());
        assert_eq!(client.read(1).unwrap(), b"abcd");
        assert_eq!(executes.load(Ordering::SeqCst), 2);
        assert_eq!(reconnects.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn facade_never_retries_fatal_errors() {
        let u = snoopy_core::Unavailable { epoch: 2, failed_suborams: vec![0] };
        let (mut client, executes, _) = harness(
            vec![Err(NetError::Unavailable(u.clone())), ok_response(b"abcd")],
            RetryPolicy::client_default(),
        );
        match client.write(1, b"abcd") {
            Err(NetError::Unavailable(back)) => assert_eq!(back, u),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(executes.load(Ordering::SeqCst), 1, "fatal errors must not be retried");
    }

    #[test]
    fn facade_respects_the_retry_budget() {
        let errs: Vec<_> =
            (0..4).map(|_| Err(NetError::Timeout(io::ErrorKind::TimedOut.into()))).collect();
        let (mut client, executes, _) = harness(errs, RetryPolicy::once());
        assert!(matches!(client.read(1), Err(NetError::Timeout(_))));
        assert_eq!(executes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn facade_assigns_increasing_seqs() {
        let (mut client, _, _) =
            harness(vec![ok_response(b"aaaa"), ok_response(b"bbbb")], RetryPolicy::once());
        client.read(1).unwrap();
        client.read(2).unwrap();
        assert_eq!(client.seq, 2);
    }

    #[test]
    fn cluster_transport_shares_the_facade() {
        use snoopy_enclave::wire::StoredObject;
        const VLEN: usize = 8;
        let cfg = snoopy_core::SnoopyConfig::with_machines(1, 2).value_len(VLEN);
        let objects = (0..16u64).map(|i| StoredObject::new(i, &[0u8; 1], VLEN)).collect();
        let mut cluster = snoopy_core::InProcessCluster::start(cfg, objects, 11);
        cluster.start_ticker(Duration::from_millis(5));
        let mut client = SnoopyClient::builder(VLEN).connect_cluster(cluster.client());
        let before = client.write(3, &[7u8; VLEN]).unwrap();
        assert_eq!(before, vec![0u8; VLEN]);
        assert_eq!(client.read(3).unwrap(), vec![7u8; VLEN]);
        cluster.shutdown();
    }
}
