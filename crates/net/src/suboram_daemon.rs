//! The subORAM daemon: a `snoopyd --role suboram` process.
//!
//! Listens on its manifest address and serves two kinds of peers, all
//! multiplexed onto the readiness reactor ([`crate::reactor`]) — no thread
//! is ever spawned per connection:
//!
//! * **Load balancers** dial in with a session hello; each session gets its
//!   own pair of AEAD links. The session's handler opens sealed epoch
//!   batches and feeds the shared [`run_suboram`] loop; responses go back
//!   over the same connection via the session's bounded outbound buffer. A
//!   balancer that reconnects simply replaces its session — the reply cache
//!   makes redelivered batches idempotent.
//! * **Admins** issue the plaintext `stats` RPC or a graceful shutdown; the
//!   `SHUTDOWN_ACK` is flushed to the wire (the reactor's drain-then-close
//!   path) before the shutdown event fires.
//!
//! The daemon checkpoints after every executed epoch, before responding
//! (see [`crate::checkpoint`]), so `kill -9` at any instant is recoverable.

use crate::checkpoint::{self, SaveError, StorageSpec};
use crate::manifest::Manifest;
use crate::proto::{self, tag, Hello, Role};
use crate::reactor::{self, Control, ReactorConfig, SessionHandle, SessionHandler};
use crate::reshard::{self, SubReshardCtx};
use crate::stats::{DaemonInfo, LinkStats, StatsRegistry};
use snoopy_core::link::Link;
use snoopy_core::transport::{
    run_suboram_with_admin, ReshardPhase, ReshardStatus, SubEvent, SubOramNode, SubReshardCmd,
    SubReshardReply, SubTransport,
};
use snoopy_crypto::{Key256, Prg};
use snoopy_lb::partition_objects;
use snoopy_suboram::SubOram;
use snoopy_telemetry::events::{self, Event, EventKind};
use snoopy_telemetry::{merge, metrics, trace, Public};
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Worker-pool size for the daemons' reactors: `SNOOPY_NET_WORKERS` (0 =
/// process frames inline on the reactor thread), defaulting to a small pool.
pub(crate) fn net_workers() -> usize {
    std::env::var("SNOOPY_NET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
        .min(64)
}

/// One live balancer session (the write side; reads happen in the session's
/// reactor handler).
struct LbConn {
    session: u64,
    handle: SessionHandle,
    resp_link: Link,
    stats: Arc<LinkStats>,
}

/// Shared slots, one per balancer index.
type ConnTable = Arc<Mutex<Vec<Option<LbConn>>>>;

struct TcpSubTransport {
    events: Receiver<SubEvent>,
    conns: ConnTable,
}

impl SubTransport for TcpSubTransport {
    fn recv(&mut self) -> Option<SubEvent> {
        self.events.recv().ok()
    }

    fn send_response(&mut self, lb: usize, epoch: u64, batch: &[snoopy_enclave::wire::Request]) {
        // Seal and enqueue under the table lock so the AEAD nonce order
        // matches the enqueue order exactly.
        let mut conns = self.conns.lock().unwrap();
        let Some(conn) = conns[lb].as_mut() else {
            // Balancer currently disconnected: drop the response. It will
            // resend the batch on reconnect and the reply cache answers.
            return;
        };
        let sealed = match conn.resp_link.seal(batch) {
            Ok(s) => s,
            Err(_) => {
                conn.handle.close();
                conns[lb] = None;
                return;
            }
        };
        let body = proto::encode_epoch_sealed(epoch, &sealed);
        if conn.handle.send_frame(tag::RESP_BATCH, &body) {
            conn.stats.sent(body.len());
        } else {
            // Bounded-buffer overflow or a dead session: the handle killed
            // the session; the balancer replays over a fresh one.
            conns[lb] = None;
        }
    }

    fn send_error(&mut self, lb: usize, epoch: u64) {
        // Typed refusal: a plaintext RESP_ERR frame naming only the epoch
        // (the subORAM index is implicit in the connection). Refusals are
        // deterministic, so a disconnected balancer rediscovers the same
        // refusal when it replays after reconnecting.
        let mut conns = self.conns.lock().unwrap();
        let Some(conn) = conns[lb].as_mut() else { return };
        let body = epoch.to_le_bytes();
        if conn.handle.send_frame(tag::RESP_ERR, &body) {
            conn.stats.sent(body.len());
        } else {
            conns[lb] = None;
        }
    }
}

/// Runs the subORAM daemon until an admin shutdown. `checkpoint_path`
/// enables crash recovery (recommended; the integration tests rely on it).
pub fn run(
    manifest: &Manifest,
    index: usize,
    checkpoint_path: Option<PathBuf>,
    registry: &StatsRegistry,
) -> io::Result<()> {
    if index >= manifest.suborams.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "suboram index {index} out of range (manifest has {})",
                manifest.suborams.len()
            ),
        ));
    }
    let num_lbs = manifest.load_balancers.len();
    let mut prg = Prg::from_seed(manifest.seed);
    let shared_key = Key256::random(&mut prg);
    let deploy = proto::deployment_key(manifest.seed);
    let mut oram_label = b"suboram-key/".to_vec();
    oram_label.extend_from_slice(&(index as u64).to_le_bytes());
    let oram_key = deploy.derive(&oram_label);
    let ckpt_key = checkpoint::checkpoint_key(&deploy, index);

    // Recover from a checkpoint if one exists, else build the partition from
    // the deterministic initial store over the manifest's storage tier. For
    // the disk tier, recovery reopens the committed generation the sealed
    // checkpoint names (verifying its root digest); a fresh start seals
    // generation 0 under `<store_dir>/sub<index>`.
    let spec = StorageSpec::from_manifest(manifest, index);
    let recovered = match &checkpoint_path {
        Some(path) => checkpoint::load(&ckpt_key, path, oram_key.clone(), manifest.lambda, &spec)?,
        None => None,
    };
    let node = match recovered {
        Some(node) => node,
        None => {
            // Boot layout: the manifest's *active* fleet size, which may be
            // smaller than the provisioned address list (warm spares hold an
            // empty partition until a reshard grows into them).
            let active = manifest.initial_active();
            let mut parts = partition_objects(manifest.initial_objects(), &shared_key, active);
            parts.resize_with(manifest.suborams.len(), Vec::new);
            let part = parts.into_iter().nth(index).unwrap();
            let oram =
                spec.fresh_suboram(part, manifest.value_len, oram_key.clone(), manifest.lambda)?;
            let mut node = SubOramNode::new(oram, num_lbs);
            node.set_layout(0, active);
            node
        }
    };
    // Bound the reply cache (and with it the checkpoint size): epochs older
    // than `retain_epochs` evict, and a replay of an evicted epoch gets a
    // typed refusal instead of a corrupting re-execution.
    let mut node = node
        .with_index(index)
        .with_retain(manifest.retain_epochs as usize)
        .with_threads(manifest.sub_threads as usize);

    events::recorder().set_identity("suboram", index as u64);
    let listener = TcpListener::bind(&manifest.suborams[index])?;
    let (events_tx, events_rx) = channel();
    let conns: ConnTable = Arc::new(Mutex::new((0..num_lbs).map(|_| None).collect()));
    {
        let ctx = AcceptCtx {
            manifest: manifest.clone(),
            index,
            deploy: deploy.clone(),
            conns: conns.clone(),
            events_tx: events_tx.clone(),
            registry: registry.clone(),
            info: DaemonInfo::new("suboram", index as u64),
        };
        let cfg = ReactorConfig { workers: net_workers(), ..ReactorConfig::default() };
        reactor::spawn(listener, Box::new(move |hello, handle| ctx.accept(hello, handle)), cfg);
    }

    let mut transport = TcpSubTransport { events: events_rx, conns };
    // The staged partition of an in-flight reshard, if any: built beside the
    // live one and swapped in only on commit (see `on_reshard` below).
    let mut staged: Option<(u64, usize, SubOram)> = None;
    let after_epoch = |node: &mut SubOramNode, epoch: u64| {
        // Durability point: the storage generation and the checkpoint must
        // both land before any response for this epoch escapes.
        match node.oram_mut().commit_storage(epoch) {
            Ok(_) => {}
            Err(snoopy_suboram::SubOramError::Integrity(_)) => {
                // Poisoned partition: the node keeps serving typed refusals;
                // skip the save so the last healthy checkpoint survives.
                return;
            }
            // A storage commit that fails for I/O reasons means durability
            // is gone: fail stop before any response escapes, so the next
            // incarnation recovers from the previous sealed generation.
            Err(e) => panic!("storage commit failed: {e}"),
        }
        if let Some(path) = &checkpoint_path {
            let seal_span = trace::span("checkpoint_seal");
            match checkpoint::save(node, &ckpt_key, path) {
                Ok(()) => {}
                // Same split as the commit: a poisoned node skips the save
                // (stale checkpoint describes the last good state), an I/O
                // failure is fail-stop.
                Err(SaveError::Integrity(_)) => return,
                Err(SaveError::Io(e)) => panic!("checkpoint write failed: {e}"),
            }
            metrics::stage_histogram("checkpoint_seal").observe(Public::timing(seal_span.finish()));
            events::record(
                Event::new(EventKind::CheckpointCommit)
                    .with("epoch", Public::wire_observable(epoch)),
            );
        }
    };
    let on_reshard = |node: &mut SubOramNode, cmd: SubReshardCmd| -> SubReshardReply {
        let status_of = |node: &SubOramNode| {
            SubReshardReply::Status(ReshardStatus {
                generation: node.generation(),
                active_s: node.active_s(),
                phase: ReshardPhase::Idle,
            })
        };
        // Best-effort removal of a generation's disk segments (no-op for the
        // in-memory tiers, and for generation 0: the boot directory may be
        // the operator's to keep).
        let scrub = |generation: u64| {
            if generation == 0 {
                return;
            }
            if let StorageSpec::Disk { dir, .. } = &spec {
                let _ = std::fs::remove_dir_all(snoopy_store::generation_dir(dir, generation));
            }
        };
        match cmd {
            SubReshardCmd::Status => status_of(node),
            SubReshardCmd::Export => {
                let mut objects = Vec::new();
                match node.oram().stream_objects(&mut |o| objects.push(o.clone())) {
                    Ok(()) => SubReshardReply::Objects(objects),
                    Err(e) => SubReshardReply::Failed(format!("export failed: {e}")),
                }
            }
            SubReshardCmd::Install { generation, new_s, objects } => {
                if generation <= node.generation() {
                    return SubReshardReply::Failed(format!(
                        "stale install generation {generation} (serving {})",
                        node.generation()
                    ));
                }
                if let Some((g, _, _)) = staged.take() {
                    // A newer schedule replaces whatever was staged.
                    scrub(g);
                }
                // Each generation gets its own derived key (and, on the disk
                // tier, its own segment directory): a fresh store restarts
                // its commit counter, so reusing the live key would repeat
                // (key, nonce) pairs.
                let key = snoopy_store::generation_key(&oram_key, generation);
                let built = match &spec {
                    StorageSpec::Disk { dir, cfg } => {
                        let gdir = snoopy_store::generation_dir(dir, generation);
                        let _ = std::fs::remove_dir_all(&gdir);
                        snoopy_store::build_suboram_disk(
                            &gdir,
                            objects,
                            manifest.value_len,
                            *cfg,
                            key,
                            manifest.lambda,
                        )
                    }
                    _ => spec.fresh_suboram(objects, manifest.value_len, key, manifest.lambda),
                };
                match built {
                    Ok(oram) => {
                        staged = Some((generation, new_s, oram));
                        status_of(node)
                    }
                    Err(e) => SubReshardReply::Failed(format!("staging failed: {e}")),
                }
            }
            SubReshardCmd::Commit { generation } => {
                match staged.take() {
                    Some((g, new_s, oram)) if g == generation => {
                        let (old_gen, old_active) = (node.generation(), node.active_s());
                        let old = node.swap_oram(oram);
                        node.set_layout(generation, new_s);
                        // The new generation must be durable *before* the ack
                        // escapes: commit its storage, then re-checkpoint.
                        // Either failing rolls the swap back — the driver
                        // sees Failed and aborts, and the live layout (plus
                        // its still-valid checkpoint) is untouched.
                        let persist = node
                            .oram_mut()
                            .commit_storage(0)
                            .map_err(|e| format!("storage commit failed: {e}"))
                            .and_then(|_| match &checkpoint_path {
                                Some(path) => checkpoint::save(node, &ckpt_key, path)
                                    .map_err(|e| format!("checkpoint failed: {e}")),
                                None => Ok(()),
                            });
                        match persist {
                            Ok(()) => {
                                drop(old);
                                scrub(old_gen);
                                events::record(
                                    Event::new(EventKind::ReshardCommit)
                                        .with("generation", Public::config(generation))
                                        .with("suborams", Public::config(new_s as u64)),
                                );
                                status_of(node)
                            }
                            Err(e) => {
                                let failed = node.swap_oram(old);
                                node.set_layout(old_gen, old_active);
                                drop(failed);
                                scrub(generation);
                                SubReshardReply::Failed(e)
                            }
                        }
                    }
                    Some(other) => {
                        staged = Some(other);
                        SubReshardReply::Failed(format!("no staged generation {generation}"))
                    }
                    None => SubReshardReply::Failed("nothing staged".into()),
                }
            }
            SubReshardCmd::Abort { generation } => {
                match staged.take() {
                    Some((g, _, oram)) if g == generation => {
                        drop(oram);
                        scrub(g);
                        events::record(
                            Event::new(EventKind::ReshardAbort)
                                .with("generation", Public::config(generation)),
                        );
                    }
                    other => staged = other,
                }
                status_of(node)
            }
        }
    };
    run_suboram_with_admin(&mut transport, &mut node, after_epoch, on_reshard);
    events::record(Event::new(EventKind::Shutdown));
    events::recorder().dump("shutdown");
    Ok(())
}

/// Publishes the session-handshake clock-offset estimate for a peer: the
/// hello carries the dialer's wall clock (`wall_ns`), so `theirs − ours` at
/// accept time bounds the skew to within the (one-way) connect latency.
/// Legacy 17-byte hellos carry no stamp (`wall_ns == 0`) and are skipped.
/// Both the stamp and accept timing are wire-observable.
pub(crate) fn record_peer_clock_offset(peer: &str, wall_ns: u64) {
    if wall_ns == 0 {
        return;
    }
    let offset_s = (wall_ns as i64 - events::unix_now_ns() as i64) as f64 / 1e9;
    metrics::global()
        .gauge_labeled(
            "snoopy_peer_clock_offset_seconds",
            "estimated peer wall-clock offset (theirs minus ours) at session handshake",
            Some(("peer", peer)),
        )
        .set(Public::wire_observable(offset_s));
}

/// Everything the reactor's acceptor needs about the daemon it serves.
struct AcceptCtx {
    manifest: Manifest,
    index: usize,
    deploy: Key256,
    conns: ConnTable,
    events_tx: Sender<SubEvent>,
    registry: StatsRegistry,
    info: DaemonInfo,
}

impl AcceptCtx {
    /// Turns an accepted hello into this session's handler (reactor thread;
    /// key derivation only).
    fn accept(&self, hello: Hello, handle: &SessionHandle) -> Option<Box<dyn SessionHandler>> {
        match hello.role {
            Role::LoadBalancer => {
                let lb = hello.index as usize;
                if lb >= self.manifest.load_balancers.len() {
                    return None;
                }
                let stats = self.registry.link(&format!("lb/{lb}"));
                record_peer_clock_offset(&format!("lb/{lb}"), hello.wall_ns);
                let (batch_link, resp_link) = proto::suboram_session_links(
                    &self.deploy,
                    lb,
                    self.index,
                    self.manifest.suborams.len(),
                    hello.session,
                );
                {
                    let mut table = self.conns.lock().unwrap();
                    if let Some(old) = table[lb].take() {
                        // A replacement session: kill the stale connection.
                        old.handle.close();
                        stats.reconnected();
                    }
                    table[lb] = Some(LbConn {
                        session: hello.session,
                        handle: handle.clone(),
                        resp_link,
                        stats: stats.clone(),
                    });
                }
                Some(Box::new(LbSessionHandler {
                    lb,
                    session: hello.session,
                    batch_link,
                    value_len: self.manifest.value_len,
                    stats,
                    conns: self.conns.clone(),
                    events_tx: self.events_tx.clone(),
                }))
            }
            Role::Admin => {
                record_peer_clock_offset("admin", hello.wall_ns);
                let events_tx = self.events_tx.clone();
                let handler = AdminHandler::new(self.registry.clone(), self.info, move || {
                    let _ = events_tx.send(SubEvent::Shutdown);
                })
                .with_reshard(reshard::sub_rpc_handler(SubReshardCtx {
                    events_tx: self.events_tx.clone(),
                    deploy: self.deploy.clone(),
                    value_len: self.manifest.value_len,
                    num_objects: self.manifest.num_objects,
                    index: self.index,
                }));
                Some(Box::new(handler))
            }
            // Clients talk to balancers, not subORAMs.
            Role::Client => None,
        }
    }
}

/// One accepted balancer session, as the reactor drives it.
struct LbSessionHandler {
    lb: usize,
    session: u64,
    batch_link: Link,
    value_len: usize,
    stats: Arc<LinkStats>,
    conns: ConnTable,
    events_tx: Sender<SubEvent>,
}

impl SessionHandler for LbSessionHandler {
    fn on_frame(&mut self, t: u8, body: Vec<u8>, _handle: &SessionHandle) -> Control {
        self.stats.received(body.len());
        if t != tag::BATCH {
            return Control::Close;
        }
        let Some((ctx, sealed)) = proto::decode_batch_ctx(&body) else {
            return Control::Close;
        };
        // The frame's trace context is plaintext routing metadata — epoch,
        // balancer index and per-(sub, epoch) send sequence, all
        // wire-observable already. The sequence distinguishes a first send
        // (seq 0) from replay waves in traces and flight-recorder dumps.
        let epoch = ctx.epoch;
        // A link failure (tamper/replay) kills the session; the balancer
        // redials with a fresh one.
        let Ok(batch) = self.batch_link.open(&sealed, self.value_len) else {
            return Control::Close;
        };
        if self
            .events_tx
            .send(SubEvent::Batch { lb: self.lb, epoch, generation: ctx.generation, batch })
            .is_err()
        {
            return Control::Close;
        }
        Control::Continue
    }

    fn on_close(&mut self) {
        let mut table = self.conns.lock().unwrap();
        // Only clear the slot if it still belongs to this session (a newer
        // session may already have replaced it).
        if table[self.lb].as_ref().is_some_and(|c| c.session == self.session) {
            table[self.lb] = None;
        }
    }
}

/// Serves `stats`/`health`/`metrics`/`shutdown` on an admin session. Shared
/// by both daemon roles. The shutdown callback fires from `on_drained`,
/// after the `SHUTDOWN_ACK` has been flushed to the wire — an admin that has
/// read the ack knows the daemon is really going down.
pub(crate) struct AdminHandler {
    registry: StatsRegistry,
    info: DaemonInfo,
    shutdown: Box<dyn Fn() + Send>,
    shutting_down: bool,
    /// Reshard RPC handler, when this daemon's role supports resharding.
    /// Sessions without one refuse `RESHARD_REQ` frames.
    reshard: Option<reshard::RpcHandler>,
}

impl AdminHandler {
    pub(crate) fn new(
        registry: StatsRegistry,
        info: DaemonInfo,
        shutdown: impl Fn() + Send + 'static,
    ) -> AdminHandler {
        AdminHandler {
            registry,
            info,
            shutdown: Box::new(shutdown),
            shutting_down: false,
            reshard: None,
        }
    }

    /// Installs the role's reshard frame handler on this session.
    pub(crate) fn with_reshard(mut self, handler: reshard::RpcHandler) -> AdminHandler {
        self.reshard = Some(handler);
        self
    }
}

impl SessionHandler for AdminHandler {
    fn on_frame(&mut self, t: u8, body: Vec<u8>, handle: &SessionHandle) -> Control {
        let rpc_span = trace::span("rpc");
        let control = match t {
            tag::RESHARD_REQ => match (self.reshard.as_mut(), reshard::ReshardReq::decode(&body)) {
                (Some(handler), Some(req)) => {
                    let mut ok = true;
                    for r in handler(req) {
                        if !handle.send_frame(tag::RESHARD_RESP, &r.encode()) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        Control::Continue
                    } else {
                        Control::Close
                    }
                }
                _ => Control::Close,
            },
            tag::STATS_REQ => {
                let mut body = self.info.header().render();
                body.push('\n');
                body.push_str(&self.registry.render());
                if handle.send_frame(tag::STATS_RESP, body.as_bytes()) {
                    Control::Continue
                } else {
                    Control::Close
                }
            }
            tag::HEALTH_REQ => {
                // Liveness probe: just the identity/uptime/epoch header —
                // cheap enough for tight heartbeat loops, and everything in
                // it is public configuration or coarse process age.
                let body = self.info.header().render();
                if handle.send_frame(tag::HEALTH_RESP, body.as_bytes()) {
                    Control::Continue
                } else {
                    Control::Close
                }
            }
            tag::METRICS_REQ => {
                let reg = metrics::global();
                // Bridge link counters in at scrape time; everything else
                // (epoch counters, stage histograms) is already live.
                self.registry.publish_metrics(reg);
                trace::tracer().publish_metrics(reg);
                let daemon = format!("{}/{}", self.info.role, self.info.index);
                reg.gauge_labeled(
                    "snoopy_uptime_seconds",
                    "seconds since this daemon started serving",
                    Some(("daemon", &daemon)),
                )
                .set(Public::timing(self.info.started.elapsed().as_secs_f64()));
                if handle.send_frame(tag::METRICS_RESP, reg.render_prometheus().as_bytes()) {
                    Control::Continue
                } else {
                    Control::Close
                }
            }
            tag::TRACE_REQ => {
                // Destructive drain: spans collected since the last trace
                // RPC, anchored to this process's wall clock so the
                // collector can rebase them (see `telemetry::merge`).
                let process = format!("{}/{}", self.info.role, self.info.index);
                let dump = merge::capture_dump(&process, trace::tracer());
                if handle.send_frame(tag::TRACE_RESP, dump.render_json().as_bytes()) {
                    Control::Continue
                } else {
                    Control::Close
                }
            }
            tag::EVENTS_REQ => {
                // Non-destructive snapshot of the flight recorder, as JSONL.
                let body = events::to_jsonl(&events::recorder().snapshot());
                if handle.send_frame(tag::EVENTS_RESP, body.as_bytes()) {
                    Control::Continue
                } else {
                    Control::Close
                }
            }
            tag::SHUTDOWN => {
                let _ = handle.send_frame(tag::SHUTDOWN_ACK, b"");
                self.shutting_down = true;
                Control::CloseAfterFlush
            }
            _ => Control::Close,
        };
        metrics::stage_histogram("rpc").observe(Public::timing(rpc_span.finish()));
        control
    }

    fn on_drained(&mut self) {
        if self.shutting_down {
            (self.shutdown)();
        }
    }
}
