//! The subORAM daemon: a `snoopyd --role suboram` process.
//!
//! Listens on its manifest address and serves three kinds of peers:
//!
//! * **Load balancers** dial in with a session hello; each session gets its
//!   own pair of AEAD links. A reader thread per session opens sealed epoch
//!   batches and feeds the shared [`run_suboram`] loop; responses go back
//!   over the same connection. A balancer that reconnects simply replaces
//!   its session — the reply cache makes redelivered batches idempotent.
//! * **Admins** issue the plaintext `stats` RPC or a graceful shutdown.
//!
//! The daemon checkpoints after every executed epoch, before responding
//! (see [`crate::checkpoint`]), so `kill -9` at any instant is recoverable.

use crate::checkpoint;
use crate::frame::{read_frame, write_frame};
use crate::manifest::Manifest;
use crate::proto::{self, tag, Hello, Role};
use crate::stats::{DaemonInfo, LinkStats, StatsRegistry};
use snoopy_core::link::Link;
use snoopy_core::transport::{run_suboram, SubEvent, SubOramNode, SubTransport};
use snoopy_crypto::{Key256, Prg};
use snoopy_lb::partition_objects;
use snoopy_suboram::SubOram;
use snoopy_telemetry::{metrics, trace, Public};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One live balancer session (the write half; the read half lives on the
/// session's reader thread).
struct LbConn {
    session: u64,
    stream: TcpStream,
    resp_link: Link,
    stats: Arc<LinkStats>,
}

/// Shared slots, one per balancer index.
type ConnTable = Arc<Mutex<Vec<Option<LbConn>>>>;

struct TcpSubTransport {
    events: Receiver<SubEvent>,
    conns: ConnTable,
}

impl SubTransport for TcpSubTransport {
    fn recv(&mut self) -> Option<SubEvent> {
        self.events.recv().ok()
    }

    fn send_response(&mut self, lb: usize, epoch: u64, batch: &[snoopy_enclave::wire::Request]) {
        let mut conns = self.conns.lock().unwrap();
        let Some(conn) = conns[lb].as_mut() else {
            // Balancer currently disconnected: drop the response. It will
            // resend the batch on reconnect and the reply cache answers.
            return;
        };
        let sealed = match conn.resp_link.seal(batch) {
            Ok(s) => s,
            Err(_) => {
                conns[lb] = None;
                return;
            }
        };
        let body = proto::encode_epoch_sealed(epoch, &sealed);
        match write_frame(&mut conn.stream, tag::RESP_BATCH, &body) {
            Ok(()) => conn.stats.sent(body.len()),
            Err(_) => {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns[lb] = None;
            }
        }
    }

    fn send_error(&mut self, lb: usize, epoch: u64) {
        // Typed refusal: a plaintext RESP_ERR frame naming only the epoch
        // (the subORAM index is implicit in the connection). Refusals are
        // deterministic, so a disconnected balancer rediscovers the same
        // refusal when it replays after reconnecting.
        let mut conns = self.conns.lock().unwrap();
        let Some(conn) = conns[lb].as_mut() else { return };
        let body = epoch.to_le_bytes();
        match write_frame(&mut conn.stream, tag::RESP_ERR, &body) {
            Ok(()) => conn.stats.sent(body.len()),
            Err(_) => {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns[lb] = None;
            }
        }
    }
}

/// Runs the subORAM daemon until an admin shutdown. `checkpoint_path`
/// enables crash recovery (recommended; the integration tests rely on it).
pub fn run(
    manifest: &Manifest,
    index: usize,
    checkpoint_path: Option<PathBuf>,
    registry: &StatsRegistry,
) -> io::Result<()> {
    if index >= manifest.suborams.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "suboram index {index} out of range (manifest has {})",
                manifest.suborams.len()
            ),
        ));
    }
    let num_lbs = manifest.load_balancers.len();
    let mut prg = Prg::from_seed(manifest.seed);
    let shared_key = Key256::random(&mut prg);
    let deploy = proto::deployment_key(manifest.seed);
    let mut oram_label = b"suboram-key/".to_vec();
    oram_label.extend_from_slice(&(index as u64).to_le_bytes());
    let oram_key = deploy.derive(&oram_label);
    let ckpt_key = checkpoint::checkpoint_key(&deploy, index);

    // Recover from a checkpoint if one exists, else build the partition from
    // the deterministic initial store.
    let recovered = match &checkpoint_path {
        Some(path) => checkpoint::load(&ckpt_key, path, oram_key.clone(), manifest.lambda)?,
        None => None,
    };
    let node = match recovered {
        Some(node) => node,
        None => {
            let parts =
                partition_objects(manifest.initial_objects(), &shared_key, manifest.suborams.len());
            let part = parts.into_iter().nth(index).unwrap();
            SubOramNode::new(
                SubOram::new_in_enclave(part, manifest.value_len, oram_key, manifest.lambda),
                num_lbs,
            )
        }
    };
    // Bound the reply cache (and with it the checkpoint size): epochs older
    // than `retain_epochs` evict, and a replay of an evicted epoch gets a
    // typed refusal instead of a corrupting re-execution.
    let mut node = node
        .with_index(index)
        .with_retain(manifest.retain_epochs as usize)
        .with_threads(manifest.sub_threads as usize);

    let listener = TcpListener::bind(&manifest.suborams[index])?;
    let (events_tx, events_rx) = channel();
    let conns: ConnTable = Arc::new(Mutex::new((0..num_lbs).map(|_| None).collect()));
    {
        let ctx = AcceptCtx {
            manifest: manifest.clone(),
            index,
            deploy: deploy.clone(),
            conns: conns.clone(),
            events_tx: events_tx.clone(),
            registry: registry.clone(),
            info: DaemonInfo::new("suboram", index as u64),
        };
        std::thread::spawn(move || accept_loop(listener, ctx));
    }

    let mut transport = TcpSubTransport { events: events_rx, conns };
    run_suboram(&mut transport, &mut node, |node, _epoch| {
        if let Some(path) = &checkpoint_path {
            // Durability point: the checkpoint must land before any response
            // for this epoch escapes.
            let seal_span = trace::span("checkpoint_seal");
            checkpoint::save(node, &ckpt_key, path).expect("checkpoint write failed");
            metrics::stage_histogram("checkpoint_seal").observe(Public::timing(seal_span.finish()));
        }
    });
    Ok(())
}

/// Everything the accept loop needs about the daemon it serves.
struct AcceptCtx {
    manifest: Manifest,
    index: usize,
    deploy: Key256,
    conns: ConnTable,
    events_tx: Sender<SubEvent>,
    registry: StatsRegistry,
    info: DaemonInfo,
}

fn accept_loop(listener: TcpListener, ctx: AcceptCtx) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok((tag::HELLO, body)) = read_frame(&mut stream) else { continue };
        let Some(hello) = Hello::decode(&body) else { continue };
        let _ = stream.set_read_timeout(None);
        match hello.role {
            Role::LoadBalancer => {
                let lb = hello.index as usize;
                if lb >= ctx.manifest.load_balancers.len() {
                    continue;
                }
                let stats = ctx.registry.link(&format!("lb/{lb}"));
                let (batch_link, resp_link) = proto::suboram_session_links(
                    &ctx.deploy,
                    lb,
                    ctx.index,
                    ctx.manifest.suborams.len(),
                    hello.session,
                );
                let Ok(write_half) = stream.try_clone() else { continue };
                {
                    let mut table = ctx.conns.lock().unwrap();
                    if let Some(old) = table[lb].take() {
                        // A replacement session: kill the stale connection.
                        let _ = old.stream.shutdown(std::net::Shutdown::Both);
                        stats.reconnected();
                    }
                    table[lb] = Some(LbConn {
                        session: hello.session,
                        stream: write_half,
                        resp_link,
                        stats: stats.clone(),
                    });
                }
                let session = LbSession {
                    lb,
                    session: hello.session,
                    batch_link,
                    value_len: ctx.manifest.value_len,
                    stats,
                };
                let conns = ctx.conns.clone();
                let events_tx = ctx.events_tx.clone();
                std::thread::spawn(move || lb_session_reader(stream, session, conns, events_tx));
            }
            Role::Admin => {
                let events_tx = ctx.events_tx.clone();
                let registry = ctx.registry.clone();
                let info = ctx.info;
                std::thread::spawn(move || {
                    admin_session(stream, registry, info, move || {
                        let _ = events_tx.send(SubEvent::Shutdown);
                    })
                });
            }
            // Clients talk to balancers, not subORAMs.
            Role::Client => {}
        }
    }
}

/// One accepted balancer session, as its reader thread sees it.
struct LbSession {
    lb: usize,
    session: u64,
    batch_link: Link,
    value_len: usize,
    stats: Arc<LinkStats>,
}

fn lb_session_reader(
    mut stream: TcpStream,
    mut session: LbSession,
    conns: ConnTable,
    events_tx: Sender<SubEvent>,
) {
    let lb = session.lb;
    while let Ok((t, body)) = read_frame(&mut stream) {
        session.stats.received(body.len());
        if t != tag::BATCH {
            break;
        }
        let Some((epoch, sealed)) = proto::decode_epoch_sealed(&body) else { break };
        // A link failure (tamper/replay) kills the session; the balancer
        // redials with a fresh one.
        let Ok(batch) = session.batch_link.open(&sealed, session.value_len) else { break };
        if events_tx.send(SubEvent::Batch { lb, epoch, batch }).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let mut table = conns.lock().unwrap();
    // Only clear the slot if it still belongs to this session (a newer
    // session may already have replaced it).
    if table[lb].as_ref().is_some_and(|c| c.session == session.session) {
        table[lb] = None;
    }
}

/// Serves `stats`/`metrics`/`shutdown` on an admin connection. Shared by
/// both daemon roles.
pub(crate) fn admin_session(
    mut stream: TcpStream,
    registry: StatsRegistry,
    info: DaemonInfo,
    shutdown: impl Fn() + Send + 'static,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    while let Ok((t, _body)) = read_frame(&mut stream) {
        let rpc_span = trace::span("rpc");
        let ok = match t {
            tag::STATS_REQ => {
                let mut body = info.header().render();
                body.push('\n');
                body.push_str(&registry.render());
                write_frame(&mut stream, tag::STATS_RESP, body.as_bytes()).is_ok()
            }
            tag::HEALTH_REQ => {
                // Liveness probe: just the identity/uptime/epoch header —
                // cheap enough for tight heartbeat loops, and everything in
                // it is public configuration or coarse process age.
                let body = info.header().render();
                write_frame(&mut stream, tag::HEALTH_RESP, body.as_bytes()).is_ok()
            }
            tag::METRICS_REQ => {
                let reg = metrics::global();
                // Bridge link counters in at scrape time; everything else
                // (epoch counters, stage histograms) is already live.
                registry.publish_metrics(reg);
                let daemon = format!("{}/{}", info.role, info.index);
                reg.gauge_labeled(
                    "snoopy_uptime_seconds",
                    "seconds since this daemon started serving",
                    Some(("daemon", &daemon)),
                )
                .set(Public::timing(info.started.elapsed().as_secs_f64()));
                write_frame(&mut stream, tag::METRICS_RESP, reg.render_prometheus().as_bytes())
                    .is_ok()
            }
            tag::SHUTDOWN => {
                let _ = write_frame(&mut stream, tag::SHUTDOWN_ACK, b"");
                shutdown();
                false
            }
            _ => false,
        };
        metrics::stage_histogram("rpc").observe(Public::timing(rpc_span.finish()));
        if !ok {
            break;
        }
    }
}
