//! Length-prefixed framing over a byte stream.
//!
//! Every message on a snoopy-net connection is one frame:
//!
//! ```text
//! +----------------+-----+------------------+
//! | len: u32 LE    | tag | body (len-1 B)   |
//! +----------------+-----+------------------+
//! ```
//!
//! `len` counts the tag byte plus the body, so an empty-bodied frame has
//! `len = 1`. Frames carry either AEAD-sealed link messages (batches,
//! responses, client requests) or small plaintext control messages (hellos,
//! stats). The framing layer is untrusted: a mangled length or truncated
//! frame is an I/O error, and anything that decrypts is still gated by the
//! link layer's replay protection.

use std::io::{self, Read, Write};

/// Hard cap on a frame's size (tag + body). Batches are bounded by the epoch
/// batch size, so anything larger than this is a corrupt or hostile peer.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame. The caller supplies the tag and the body separately so
/// sealed payloads need not be copied into a tagged buffer first.
pub fn write_frame(w: &mut impl Write, tag: u8, body: &[u8]) -> io::Result<()> {
    let len = body.len() + 1;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(body);
    // One write call so a frame is never interleaved with another writer's
    // (callers still serialize writers per connection).
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, returning `(tag, body)`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let tag = buf[0];
    buf.remove(0);
    Ok((tag, buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello").unwrap();
        write_frame(&mut wire, 2, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), (2, Vec::new()));
        assert!(read_frame(&mut r).is_err()); // EOF
    }

    #[test]
    fn rejects_oversized_and_zero_length() {
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert!(read_frame(&mut r).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r: &[u8] = &huge;
        assert!(read_frame(&mut r).is_err());
    }
}
