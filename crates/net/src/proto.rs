//! The snoopy-net wire protocol: frame tags, hellos, and session key
//! derivation.
//!
//! A connection starts with a plaintext [`Hello`] naming the dialer's role,
//! index, and a fresh random session id. Both ends then derive this
//! session's pair of link keys from the deployment key and the session id,
//! so a reconnect gets fresh keys — sequence numbers restart at zero on a
//! new session without ever reusing a `(key, nonce)` pair, and a sealed
//! message recorded from an old session can never be replayed into a new
//! one.

use snoopy_core::link::Link;
use snoopy_crypto::{Key256, Prg};

/// Frame tags.
pub mod tag {
    /// Session hello (plaintext): role, index, session id.
    pub const HELLO: u8 = 1;
    /// Load balancer → subORAM: sealed epoch batch.
    pub const BATCH: u8 = 2;
    /// SubORAM → load balancer: sealed epoch response batch.
    pub const RESP_BATCH: u8 = 3;
    /// Client → load balancer: sealed request batch.
    pub const CLIENT_REQ: u8 = 4;
    /// Load balancer → client: sealed response batch.
    pub const CLIENT_RESP: u8 = 5;
    /// Admin → daemon: per-link counters request (plaintext).
    pub const STATS_REQ: u8 = 6;
    /// Daemon → admin: counters snapshot (plaintext UTF-8 lines).
    pub const STATS_RESP: u8 = 7;
    /// Admin → daemon: graceful shutdown request.
    pub const SHUTDOWN: u8 = 8;
    /// Daemon → admin: shutdown acknowledged (sent before exiting).
    pub const SHUTDOWN_ACK: u8 = 9;
    /// Admin → daemon: Prometheus metrics request (plaintext).
    pub const METRICS_REQ: u8 = 10;
    /// Daemon → admin: Prometheus text exposition (plaintext UTF-8).
    pub const METRICS_RESP: u8 = 11;
    /// Admin → daemon: liveness/heartbeat probe (plaintext).
    pub const HEALTH_REQ: u8 = 12;
    /// Daemon → admin: health snapshot (plaintext `role=... index=...
    /// uptime_secs=... epochs=...` — a [`crate::stats::StatsHeader`]).
    pub const HEALTH_RESP: u8 = 13;
    /// Load balancer → client: this request's epoch degraded; typed
    /// `Unavailable` body ([`super::encode_unavailable`]). Plaintext by
    /// design: it is a liveness signal with the same trust level as a TCP
    /// RST — an adversary who can forge it can already sever the connection,
    /// and it carries only wire-observable facts (epoch id, which subORAMs
    /// went silent).
    pub const CLIENT_FAIL: u8 = 14;
    /// SubORAM → load balancer: this epoch's batch was refused with a typed
    /// error (body: `epoch u64 LE`). Plaintext for the same reason as
    /// [`CLIENT_FAIL`]: a liveness signal carrying only wire-observable
    /// facts — the balancer learns *which subORAM* refused *which epoch*,
    /// both of which the network already sees, and nothing about why.
    pub const RESP_ERR: u8 = 15;
    /// Admin → daemon: tracer span-dump request (plaintext).
    pub const TRACE_REQ: u8 = 16;
    /// Daemon → admin: drained spans as a [`crate::merge`]-compatible
    /// `ProcessDump` JSON document (plaintext UTF-8). Spans cover only
    /// data-independent stages with public names — the same surface the
    /// metrics exposition already exports.
    pub const TRACE_RESP: u8 = 17;
    /// Admin → daemon: flight-recorder snapshot request (plaintext).
    pub const EVENTS_REQ: u8 = 18;
    /// Daemon → admin: flight-recorder events as JSONL (plaintext UTF-8).
    /// Every event field passed the `Public` gate at record time.
    pub const EVENTS_RESP: u8 = 19;
    /// Admin → daemon: reshard command (plaintext header, sealed payload
    /// for migration batches — see [`crate::reshard`]). The header carries
    /// only public facts: generation, fleet sizes, batch schedule indices.
    pub const RESHARD_REQ: u8 = 20;
    /// Daemon → admin: reshard reply (status snapshot or a sealed export
    /// batch on the public migration schedule).
    pub const RESHARD_RESP: u8 = 21;
}

/// Who is dialing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// A load balancer dialing a subORAM.
    LoadBalancer,
    /// A client dialing a load balancer.
    Client,
    /// An operator tool (stats/shutdown) dialing any daemon.
    Admin,
}

impl Role {
    fn encode(self) -> u8 {
        match self {
            Role::LoadBalancer => 0,
            Role::Client => 1,
            Role::Admin => 2,
        }
    }

    fn decode(b: u8) -> Option<Role> {
        match b {
            0 => Some(Role::LoadBalancer),
            1 => Some(Role::Client),
            2 => Some(Role::Admin),
            _ => None,
        }
    }
}

/// The first frame on every connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The dialer's role.
    pub role: Role,
    /// The dialer's index within its role (load-balancer index; 0 for
    /// clients and admins).
    pub index: u64,
    /// Fresh random session id; scopes this connection's link keys.
    pub session: u64,
    /// The dialer's wall clock at handshake time, nanoseconds since the
    /// Unix epoch (0 = unknown, e.g. a pre-extension dialer). The acceptor
    /// subtracts its own clock to estimate the per-peer offset that aligns
    /// merged cluster traces. Leakage: the send time of the hello frame is
    /// observable on the wire already; stamping it inside the frame adds
    /// nothing the network adversary lacks.
    pub wall_ns: u64,
}

impl Hello {
    /// Builds a hello with a fresh random session id, stamped with the
    /// current wall clock.
    pub fn new(role: Role, index: u64) -> Hello {
        let mut prg = Prg::from_entropy();
        Hello {
            role,
            index,
            session: snoopy_crypto::rng::Rng::gen(&mut prg),
            wall_ns: snoopy_telemetry::events::unix_now_ns(),
        }
    }

    /// Serializes the hello body (goes under [`tag::HELLO`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25);
        out.push(self.role.encode());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.wall_ns.to_le_bytes());
        out
    }

    /// Parses a hello body. Accepts the 17-byte pre-clock-stamp form
    /// (`wall_ns` reads as 0 = unknown) and the current 25-byte form.
    pub fn decode(body: &[u8]) -> Option<Hello> {
        if body.len() != 17 && body.len() != 25 {
            return None;
        }
        Some(Hello {
            role: Role::decode(body[0])?,
            index: u64::from_le_bytes(body[1..9].try_into().ok()?),
            session: u64::from_le_bytes(body[9..17].try_into().ok()?),
            wall_ns: if body.len() == 25 {
                u64::from_le_bytes(body[17..25].try_into().ok()?)
            } else {
                0
            },
        })
    }
}

/// The public trace context carried on every [`tag::BATCH`] frame: which
/// epoch, from which balancer, and the per-epoch send wave (0 = first send,
/// 1+ = replay waves). All three are wire-observable already — the network
/// adversary sees which link carried the frame and counts re-sends — so
/// carrying them in the clear leaks nothing new, and they let every
/// subORAM's spans and events name the balancer-side epoch they served.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// The balancer epoch this batch belongs to.
    pub epoch: u64,
    /// The sending balancer's index.
    pub lb: u64,
    /// The layout generation the balancer routed the batch under. Public by
    /// design — reshard commits are wire-visible reconfiguration events —
    /// and checked by the subORAM so mixed-layout batches around a crashed
    /// reshard are refused instead of silently misrouted.
    pub generation: u64,
    /// Send wave within the epoch: 0 on first send, incremented per replay.
    pub seq: u64,
}

/// Encodes a [`tag::BATCH`] body: `epoch | lb | seq | generation` (u64 LE
/// each) followed
/// by the sealed batch. The epoch stays first so epoch-keyed frame
/// inspection (e.g. the chaos proxy's fault decisions) reads both this and
/// the [`encode_epoch_sealed`] layout.
pub fn encode_batch_ctx(ctx: TraceCtx, sealed: &snoopy_crypto::aead::SealedBox) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + sealed.bytes.len());
    out.extend_from_slice(&ctx.epoch.to_le_bytes());
    out.extend_from_slice(&ctx.lb.to_le_bytes());
    out.extend_from_slice(&ctx.seq.to_le_bytes());
    out.extend_from_slice(&ctx.generation.to_le_bytes());
    out.extend_from_slice(&sealed.bytes);
    out
}

/// Inverse of [`encode_batch_ctx`].
pub fn decode_batch_ctx(body: &[u8]) -> Option<(TraceCtx, snoopy_crypto::aead::SealedBox)> {
    if body.len() < 32 {
        return None;
    }
    let ctx = TraceCtx {
        epoch: u64::from_le_bytes(body[..8].try_into().ok()?),
        lb: u64::from_le_bytes(body[8..16].try_into().ok()?),
        seq: u64::from_le_bytes(body[16..24].try_into().ok()?),
        generation: u64::from_le_bytes(body[24..32].try_into().ok()?),
    };
    Some((ctx, snoopy_crypto::aead::SealedBox { bytes: body[32..].to_vec() }))
}

/// An epoch-tagged sealed payload: the body of [`tag::BATCH`] and
/// [`tag::RESP_BATCH`] frames (`epoch u64 LE` + sealed bytes).
pub fn encode_epoch_sealed(epoch: u64, sealed: &snoopy_crypto::aead::SealedBox) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + sealed.bytes.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&sealed.bytes);
    out
}

/// Inverse of [`encode_epoch_sealed`].
pub fn decode_epoch_sealed(body: &[u8]) -> Option<(u64, snoopy_crypto::aead::SealedBox)> {
    if body.len() < 8 {
        return None;
    }
    let epoch = u64::from_le_bytes(body[..8].try_into().ok()?);
    Some((epoch, snoopy_crypto::aead::SealedBox { bytes: body[8..].to_vec() }))
}

/// Encodes a [`tag::CLIENT_FAIL`] body: the failing request's client `seq`,
/// the degraded epoch, and the subORAM indices that went silent.
pub fn encode_unavailable(seq: u64, err: &snoopy_core::Unavailable) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + 8 * err.failed_suborams.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&err.epoch.to_le_bytes());
    out.extend_from_slice(&(err.failed_suborams.len() as u64).to_le_bytes());
    for sub in &err.failed_suborams {
        out.extend_from_slice(&(*sub as u64).to_le_bytes());
    }
    out
}

/// Inverse of [`encode_unavailable`]: `(seq, Unavailable)`.
pub fn decode_unavailable(body: &[u8]) -> Option<(u64, snoopy_core::Unavailable)> {
    if body.len() < 24 {
        return None;
    }
    let seq = u64::from_le_bytes(body[..8].try_into().ok()?);
    let epoch = u64::from_le_bytes(body[8..16].try_into().ok()?);
    let count = u64::from_le_bytes(body[16..24].try_into().ok()?) as usize;
    let rest = &body[24..];
    if rest.len() != count * 8 {
        return None;
    }
    let failed_suborams =
        rest.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize).collect();
    Some((seq, snoopy_core::Unavailable { epoch, failed_suborams }))
}

/// Derives the deployment key every daemon shares. It seeds all per-session
/// link keys and the checkpoint keys; in a real deployment it would be
/// established by remote attestation, here it is derived from the manifest
/// seed exactly like the in-process planes derive theirs.
pub fn deployment_key(seed: u64) -> Key256 {
    let mut prg = Prg::from_seed(seed);
    Key256::random(&mut prg).derive(b"snoopy-net/deployment")
}

/// Derives the batch-direction and response-direction links for a
/// LB ↔ subORAM session. Channel ids reuse the in-process scheme
/// (`lb * s + sub`, response direction with the top bit set); the session id
/// is folded into the *key*, so ids only need to be unique per key.
pub fn suboram_session_links(
    deploy: &Key256,
    lb: usize,
    sub: usize,
    num_suborams: usize,
    session: u64,
) -> (Link, Link) {
    let chan = (lb * num_suborams + sub) as u32;
    let mut label = b"link/lb-sub/".to_vec();
    label.extend_from_slice(&(lb as u64).to_le_bytes());
    label.extend_from_slice(&(sub as u64).to_le_bytes());
    label.extend_from_slice(&session.to_le_bytes());
    let batch_key = deploy.derive(&label);
    label.push(b'r');
    let resp_key = deploy.derive(&label);
    (Link::new(batch_key, chan), Link::new(resp_key, chan | 0x8000_0000))
}

/// Derives the request-direction and response-direction links for a
/// client ↔ LB session.
pub fn client_session_links(deploy: &Key256, lb: usize, session: u64) -> (Link, Link) {
    let mut label = b"link/client-lb/".to_vec();
    label.extend_from_slice(&(lb as u64).to_le_bytes());
    label.extend_from_slice(&session.to_le_bytes());
    let req_key = deploy.derive(&label);
    label.push(b'r');
    let resp_key = deploy.derive(&label);
    (Link::new(req_key, 0x4000_0000), Link::new(resp_key, 0x4000_0001))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let h =
            Hello { role: Role::LoadBalancer, index: 3, session: 0xDEAD_BEEF, wall_ns: 123_456 };
        assert_eq!(Hello::decode(&h.encode()), Some(h));
        assert_eq!(Hello::decode(&[]), None);
        assert_eq!(Hello::decode(&[9; 17]), None); // bad role
        assert_eq!(Hello::decode(&[0; 20]), None); // bad length
                                                   // The pre-clock-stamp 17-byte form still decodes (wall_ns = 0).
        let legacy = Hello::decode(&h.encode()[..17]).unwrap();
        assert_eq!(legacy.session, h.session);
        assert_eq!(legacy.wall_ns, 0);
        // Hello::new stamps a live wall clock.
        assert!(Hello::new(Role::Admin, 0).wall_ns > 0);
    }

    #[test]
    fn batch_ctx_roundtrip() {
        let sealed = snoopy_crypto::aead::SealedBox { bytes: vec![4, 5, 6] };
        let ctx = TraceCtx { epoch: 11, lb: 2, seq: 1, generation: 3 };
        let body = encode_batch_ctx(ctx, &sealed);
        let (back, back_sealed) = decode_batch_ctx(&body).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(back_sealed.bytes, sealed.bytes);
        // Epoch-first layout: epoch-keyed inspectors read the same prefix
        // as the plain epoch+sealed framing.
        assert_eq!(u64::from_le_bytes(body[..8].try_into().unwrap()), 11);
        assert!(decode_batch_ctx(&body[..31]).is_none());
    }

    #[test]
    fn session_links_interoperate() {
        let deploy = deployment_key(7);
        let (mut a, _) = suboram_session_links(&deploy, 0, 1, 2, 42);
        let (mut b, _) = suboram_session_links(&deploy, 0, 1, 2, 42);
        let batch = vec![snoopy_enclave::wire::Request::read(5, 8, 0, 0)];
        let sealed = a.seal(&batch).unwrap();
        assert_eq!(b.open(&sealed, 8).unwrap(), batch);
    }

    #[test]
    fn different_sessions_use_different_keys() {
        let deploy = deployment_key(7);
        let (mut a, _) = suboram_session_links(&deploy, 0, 1, 2, 42);
        let (mut b, _) = suboram_session_links(&deploy, 0, 1, 2, 43);
        let sealed = a.seal(&[snoopy_enclave::wire::Request::read(5, 8, 0, 0)]).unwrap();
        assert!(b.open(&sealed, 8).is_err());
    }

    #[test]
    fn unavailable_roundtrip() {
        let err = snoopy_core::Unavailable { epoch: 77, failed_suborams: vec![0, 3] };
        let body = encode_unavailable(9, &err);
        assert_eq!(decode_unavailable(&body), Some((9, err)));
        assert_eq!(decode_unavailable(&body[..body.len() - 1]), None);
        assert_eq!(decode_unavailable(&[0; 8]), None);
    }

    #[test]
    fn epoch_sealed_roundtrip() {
        let sealed = snoopy_crypto::aead::SealedBox { bytes: vec![1, 2, 3] };
        let body = encode_epoch_sealed(9, &sealed);
        let (epoch, back) = decode_epoch_sealed(&body).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(back.bytes, sealed.bytes);
        assert!(decode_epoch_sealed(&[1, 2]).is_none());
    }
}
