//! `snoopy-mon` — cluster-wide scrape, trace and SLO gate.
//!
//! ```text
//! snoopy-mon --manifest cluster.toml                    # one scrape + gate
//! snoopy-mon --manifest cluster.toml --watch \
//!            --interval-ms 500 --count 20 \
//!            --series burn.jsonl --csv burn.csv         # time series + gate
//! snoopy-mon trace  --manifest cluster.toml --out trace.json
//! snoopy-mon events --manifest cluster.toml --out dumps/
//! ```
//!
//! The default mode polls every daemon's `metrics` RPC (balancers and
//! subORAMs alike, from the manifest), folds each exposition into an SLO
//! burn sample ([`snoopy_telemetry::SloBurn`]), aggregates across the
//! cluster, and — after the last sample — evaluates the SLO policy
//! ([`snoopy_telemetry::SloPolicy`]), exiting nonzero if any threshold is
//! breached. Unreachable daemons are reported and skipped (a monitor must
//! outlive the daemons it watches); a scrape reaching *zero* daemons is
//! itself a gate failure.
//!
//! `trace` drains every daemon's span rings over the `trace` RPC, estimates
//! each peer's clock offset from the RPC round trip, and merges everything
//! into one Chrome `trace_event` JSON timeline
//! ([`snoopy_telemetry::merged_chrome_trace`]) — the cluster-wide critical
//! path per epoch, loadable in Perfetto. `events` snapshots every daemon's
//! flight recorder as JSONL.
//!
//! Everything printed here was exported through the daemon-side
//! [`snoopy_telemetry::Public`] leakage gate; the monitor adds no surface.

use snoopy_net::manifest::Manifest;
use snoopy_net::{fetch_events, fetch_metrics, fetch_trace};
use snoopy_telemetry::events::{to_jsonl, unix_now_ns};
use snoopy_telemetry::slo::{parse_prometheus, SloBurn, SloPolicy};
use snoopy_telemetry::{chrome, merged_chrome_trace, ProcessDump};
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         snoopy-mon --manifest PATH [--watch] [--interval-ms N] [--count N]\n             \
         [--series PATH.jsonl] [--csv PATH.csv] [--p99-stage STAGE]\n             \
         [--max-p99-ms N] [--max-degraded-ratio F] [--max-replays-per-epoch F]\n             \
         [--max-evicted N] [--max-stalls N]\n  \
         snoopy-mon trace --manifest PATH [--out PATH]\n  \
         snoopy-mon events --manifest PATH [--out DIR]"
    );
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("snoopy-mon: bad value for {flag}: {v}");
            exit(2)
        })
    })
}

/// Every daemon in the manifest as `(process_name, addr)`.
fn daemons(manifest: &Manifest) -> Vec<(String, String)> {
    let lbs = manifest
        .load_balancers
        .iter()
        .enumerate()
        .map(|(i, a)| (format!("loadbalancer/{i}"), a.clone()));
    let subs =
        manifest.suborams.iter().enumerate().map(|(i, a)| (format!("suboram/{i}"), a.clone()));
    lbs.chain(subs).collect()
}

fn load_manifest(args: &[String]) -> Manifest {
    let path = PathBuf::from(flag_value(args, "--manifest").unwrap_or_else(|| usage()));
    match Manifest::load(&path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snoopy-mon: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => run_trace(&args),
        Some("events") => run_events(&args),
        Some(_) | None => run_monitor(&args),
    }
}

fn run_trace(args: &[String]) {
    let manifest = load_manifest(args);
    let mut dumps: Vec<ProcessDump> = Vec::new();
    for (process, addr) in daemons(&manifest) {
        match fetch_trace(&addr) {
            Ok(mut dump) => {
                // Trust the manifest identity over the self-reported one so
                // lanes are labeled consistently even across restarts.
                dump.process = process.clone();
                eprintln!(
                    "snoopy-mon trace: {process} ({addr}): {} spans, {} dropped, offset {:+} ns",
                    dump.spans.len(),
                    dump.spans_dropped,
                    dump.clock_offset_ns
                );
                dumps.push(dump);
            }
            Err(e) => eprintln!("snoopy-mon trace: {process} ({addr}) unreachable: {e}"),
        }
    }
    if dumps.is_empty() {
        eprintln!("snoopy-mon trace: no daemon reachable");
        exit(1);
    }
    let json = merged_chrome_trace(&dumps);
    // Self-check with the in-tree validator before anyone loads it.
    let events = match chrome::parse_chrome_trace(&json) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("snoopy-mon trace: merged trace failed validation: {e}");
            exit(1);
        }
    };
    eprintln!("snoopy-mon trace: merged {} spans from {} processes", events.len(), dumps.len());
    write_out(flag_value(args, "--out"), &json);
}

fn run_events(args: &[String]) {
    let manifest = load_manifest(args);
    let out_dir = flag_value(args, "--out").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("snoopy-mon events: cannot create {}: {e}", dir.display());
            exit(1);
        }
    }
    let mut reached = 0usize;
    for (process, addr) in daemons(&manifest) {
        match fetch_events(&addr) {
            Ok(records) => {
                reached += 1;
                let jsonl = to_jsonl(&records);
                match &out_dir {
                    Some(dir) => {
                        let path = dir.join(format!("{}.events.jsonl", process.replace('/', "-")));
                        if let Err(e) = std::fs::write(&path, jsonl) {
                            eprintln!("snoopy-mon events: write {}: {e}", path.display());
                            exit(1);
                        }
                        eprintln!(
                            "snoopy-mon events: {process}: {} events -> {}",
                            records.len(),
                            path.display()
                        );
                    }
                    None => {
                        println!("# {process}");
                        print!("{jsonl}");
                    }
                }
            }
            Err(e) => eprintln!("snoopy-mon events: {process} ({addr}) unreachable: {e}"),
        }
    }
    if reached == 0 {
        eprintln!("snoopy-mon events: no daemon reachable");
        exit(1);
    }
}

fn run_monitor(args: &[String]) {
    let manifest = load_manifest(args);
    let watch = args.iter().any(|a| a == "--watch");
    let interval = Duration::from_millis(flag_parse(args, "--interval-ms").unwrap_or(1000));
    let count: usize = flag_parse(args, "--count").unwrap_or(if watch { 10 } else { 1 });
    let mut policy = SloPolicy::conservative();
    if let Some(stage) = flag_value(args, "--p99-stage") {
        policy.p99_stage = stage;
    }
    if let Some(ms) = flag_parse::<f64>(args, "--max-p99-ms") {
        policy.max_p99_seconds = ms / 1e3;
    }
    if let Some(r) = flag_parse(args, "--max-degraded-ratio") {
        policy.max_degraded_ratio = r;
    }
    if let Some(r) = flag_parse(args, "--max-replays-per-epoch") {
        policy.max_replays_per_epoch = r;
    }
    if let Some(n) = flag_parse(args, "--max-evicted") {
        policy.max_evicted_replays = n;
    }
    if let Some(n) = flag_parse(args, "--max-stalls") {
        policy.max_storage_stalls = n;
    }

    let mut series = open_append(flag_value(args, "--series"));
    let mut csv = open_append(flag_value(args, "--csv"));
    if let Some(f) = csv.as_mut() {
        let _ = writeln!(
            f,
            "t_unix_ns,daemons_up,daemons_total,epochs,p99_seconds,degraded_epochs,\
             replay_waves,evicted_replays,storage_stalls"
        );
    }

    let targets = daemons(&manifest);
    let mut last: Option<SloBurn> = None;
    let mut last_lbs: Vec<(String, SloBurn)> = Vec::new();
    // (generation, active subORAMs) from the reshard gauges, when any daemon
    // has lived through a reshard. Both values are public (the fleet size is
    // wire-observable; the reconfiguration event is part of the threat model).
    let mut layout: Option<(f64, f64)> = None;
    for sample in 0..count.max(1) {
        if sample > 0 {
            std::thread::sleep(interval);
        }
        let mut burns = Vec::new();
        let mut lb_burns: Vec<(String, SloBurn)> = Vec::new();
        for (process, addr) in &targets {
            match fetch_metrics(addr) {
                Ok(text) => match parse_prometheus(&text) {
                    Ok(scrape) => {
                        // Reshard layout: adopt the highest generation any
                        // daemon reports (the committed one wins a race).
                        let gen = scrape.sum("snoopy_reshard_generation");
                        let active = scrape.sum("snoopy_active_suborams");
                        if gen > 0.0 && layout.is_none_or(|(g, _)| gen > g) {
                            layout = Some((gen, active));
                        }
                        let b = SloBurn::from_scrape(&scrape, &policy.p99_stage);
                        // Each balancer is its own fault domain: keep its
                        // burn row so a k-balancer cluster shows *which*
                        // balancer is degrading, not just that one is.
                        if process.starts_with("loadbalancer/") {
                            lb_burns.push((process.clone(), b));
                        }
                        burns.push(b);
                    }
                    Err(e) => eprintln!("snoopy-mon: {process} ({addr}) bad exposition: {e}"),
                },
                Err(e) => eprintln!("snoopy-mon: {process} ({addr}) unreachable: {e}"),
            }
        }
        let up = burns.len();
        let burn = SloBurn::aggregate(&burns);
        last_lbs = lb_burns;
        let t = unix_now_ns();
        let line = format!(
            "{{\"t_unix_ns\":{t},\"daemons_up\":{up},\"daemons_total\":{},\"epochs\":{},\
             \"p99_seconds\":{:.6},\"degraded_epochs\":{},\"replay_waves\":{},\
             \"evicted_replays\":{},\"storage_stalls\":{}}}",
            targets.len(),
            burn.epochs,
            burn.p99_seconds,
            burn.degraded_epochs,
            burn.replay_waves,
            burn.evicted_replays,
            burn.storage_stalls
        );
        match series.as_mut() {
            Some(f) => {
                let _ = writeln!(f, "{line}");
            }
            None => println!("{line}"),
        }
        if let Some(f) = csv.as_mut() {
            let _ = writeln!(
                f,
                "{t},{up},{},{},{:.6},{},{},{},{}",
                targets.len(),
                burn.epochs,
                burn.p99_seconds,
                burn.degraded_epochs,
                burn.replay_waves,
                burn.evicted_replays,
                burn.storage_stalls
            );
        }
        if up == 0 {
            eprintln!("snoopy-mon: scrape {sample}: no daemon reachable");
            last = None;
        } else {
            last = Some(burn);
        }
    }

    let Some(burn) = last else {
        eprintln!("snoopy-mon: SLO gate FAIL: final scrape reached no daemons");
        exit(1);
    };
    let report = policy.evaluate(&burn);
    for (process, b) in &last_lbs {
        eprintln!(
            "snoopy-mon: {process}: {} epochs, p99 {:.3} ms, degraded ratio {:.4}, \
             {:.2} replays/epoch, {} evicted, {} stalls",
            b.epochs,
            b.p99_seconds * 1e3,
            b.degraded_ratio(),
            b.replays_per_epoch(),
            b.evicted_replays,
            b.storage_stalls
        );
    }
    if let Some((gen, active)) = layout {
        eprintln!(
            "snoopy-mon: cluster: reshard generation {}, {} active subORAMs",
            gen as u64, active as u64
        );
    }
    eprintln!(
        "snoopy-mon: cluster: {} epochs, p99 {:.3} ms, degraded ratio {:.4}, \
         {:.2} replays/epoch, {} evicted, {} stalls",
        burn.epochs,
        burn.p99_seconds * 1e3,
        burn.degraded_ratio(),
        burn.replays_per_epoch(),
        burn.evicted_replays,
        burn.storage_stalls
    );
    if report.pass() {
        eprintln!("snoopy-mon: SLO gate PASS");
    } else {
        for v in &report.violations {
            eprintln!("snoopy-mon: SLO violation: {v}");
        }
        eprintln!("snoopy-mon: SLO gate FAIL");
        exit(1);
    }
}

fn open_append(path: Option<String>) -> Option<std::fs::File> {
    let path = path?;
    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("snoopy-mon: cannot open {path}: {e}");
            exit(1);
        }
    }
}

fn write_out(path: Option<String>, contents: &str) {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("snoopy-mon: cannot write {path}: {e}");
                exit(1);
            }
            eprintln!("snoopy-mon: wrote {path}");
        }
        None => println!("{contents}"),
    }
}
