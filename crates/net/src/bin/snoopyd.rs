//! `snoopyd` — one machine of a Snoopy TCP cluster.
//!
//! ```text
//! snoopyd --role loadbalancer --index 0 --manifest cluster.toml
//! snoopyd --role suboram      --index 1 --manifest cluster.toml \
//!         --checkpoint /var/lib/snoopy/sub1.ckpt
//! snoopyd stats    --addr 127.0.0.1:7000
//! snoopyd metrics  --addr 127.0.0.1:7000
//! snoopyd health   --addr 127.0.0.1:7000
//! snoopyd shutdown --addr 127.0.0.1:7000
//! ```
//!
//! Every daemon in a cluster reads the same manifest; `--role`/`--index`
//! pick its line. The daemon runs until `snoopyd shutdown` (or a signal).
//! `stats` prints the plaintext per-link counters; `metrics` prints the
//! daemon's Prometheus text exposition (stage latency histograms, epoch
//! counters, link counters) — pipe it into a node_exporter-style textfile
//! collector or scrape it from a cron job.

use snoopy_net::manifest::Manifest;
use snoopy_net::stats::StatsRegistry;
use snoopy_net::{fetch_health, fetch_metrics, fetch_stats, shutdown_daemon};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         snoopyd --role loadbalancer|suboram --index N --manifest PATH [--checkpoint PATH]\n  \
         snoopyd stats --addr HOST:PORT\n  \
         snoopyd metrics --addr HOST:PORT\n  \
         snoopyd health --addr HOST:PORT\n  \
         snoopyd shutdown --addr HOST:PORT"
    );
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_stats(&addr) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("snoopyd stats: {e}");
                    exit(1);
                }
            }
        }
        Some("metrics") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_metrics(&addr) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("snoopyd metrics: {e}");
                    exit(1);
                }
            }
        }
        Some("health") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_health(&addr) {
                Ok(header) => println!("{}", header.render()),
                Err(e) => {
                    eprintln!("snoopyd health: {e}");
                    exit(1);
                }
            }
        }
        Some("shutdown") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            if let Err(e) = shutdown_daemon(&addr) {
                eprintln!("snoopyd shutdown: {e}");
                exit(1);
            }
        }
        Some(_) => run_daemon(&args),
        None => usage(),
    }
}

fn run_daemon(args: &[String]) {
    let role = flag_value(args, "--role").unwrap_or_else(|| usage());
    let index: usize =
        flag_value(args, "--index").unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
    let manifest_path = PathBuf::from(flag_value(args, "--manifest").unwrap_or_else(|| usage()));
    let checkpoint = flag_value(args, "--checkpoint").map(PathBuf::from);

    let manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snoopyd: {e}");
            exit(1);
        }
    };
    let registry = StatsRegistry::new();
    let result = match role.as_str() {
        "loadbalancer" => {
            if checkpoint.is_some() {
                eprintln!("snoopyd: --checkpoint only applies to --role suboram");
                exit(2);
            }
            snoopy_net::lb_daemon::run(&manifest, index, &registry)
        }
        "suboram" => snoopy_net::suboram_daemon::run(&manifest, index, checkpoint, &registry),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("snoopyd ({role} {index}): {e}");
        exit(1);
    }
    // The epoch loop returned: graceful shutdown. Remaining service threads
    // (listeners, dialers) are blocked in I/O; the process exit reaps them.
    exit(0);
}
