//! `snoopyd` — one machine of a Snoopy TCP cluster.
//!
//! ```text
//! snoopyd --role loadbalancer --index 0 --manifest cluster.toml
//! snoopyd --role suboram      --index 1 --manifest cluster.toml \
//!         --checkpoint /var/lib/snoopy/sub1.ckpt
//! snoopyd stats    --addr 127.0.0.1:7000
//! snoopyd metrics  --addr 127.0.0.1:7000
//! snoopyd health   --addr 127.0.0.1:7000
//! snoopyd shutdown --addr 127.0.0.1:7000
//! snoopyd reshard  --manifest cluster.toml --new-s 8
//! snoopyd reshard  --manifest cluster.toml --auto --max-latency-ms 500
//! ```
//!
//! Every daemon in a cluster reads the same manifest; `--role`/`--index`
//! pick its line. The daemon runs until `snoopyd shutdown` (or a signal).
//! `stats` prints the plaintext per-link counters; `metrics` prints the
//! daemon's Prometheus text exposition (stage latency histograms, epoch
//! counters, link counters) — pipe it into a node_exporter-style textfile
//! collector or scrape it from a cron job.
//!
//! `reshard` drives a live epoch-boundary fleet reconfiguration (see
//! [`snoopy_net::reshard`]): `--new-s N` moves the cluster to `N` active
//! subORAMs (any value up to the manifest's provisioned list), and `--auto`
//! instead scrapes the balancers' public request counters, asks the §6
//! planner for the smallest fleet sustaining the observed load, and
//! reshards only if that differs from the live fleet.

use snoopy_net::manifest::Manifest;
use snoopy_net::stats::StatsRegistry;
use snoopy_net::{fetch_health, fetch_metrics, fetch_stats, shutdown_daemon};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         snoopyd --role loadbalancer|suboram --index N --manifest PATH [--checkpoint PATH]\n  \
         snoopyd stats --addr HOST:PORT\n  \
         snoopyd metrics --addr HOST:PORT\n  \
         snoopyd health --addr HOST:PORT\n  \
         snoopyd shutdown --addr HOST:PORT\n  \
         snoopyd reshard --manifest PATH (--new-s N | --auto)\n          \
         [--ttl-ms N] [--max-latency-ms F] [--headroom F]"
    );
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_stats(&addr) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("snoopyd stats: {e}");
                    exit(1);
                }
            }
        }
        Some("metrics") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_metrics(&addr) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("snoopyd metrics: {e}");
                    exit(1);
                }
            }
        }
        Some("health") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            match fetch_health(&addr) {
                Ok(header) => println!("{}", header.render()),
                Err(e) => {
                    eprintln!("snoopyd health: {e}");
                    exit(1);
                }
            }
        }
        Some("shutdown") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| usage());
            if let Err(e) = shutdown_daemon(&addr) {
                eprintln!("snoopyd shutdown: {e}");
                exit(1);
            }
        }
        Some("reshard") => run_reshard(&args),
        Some(_) => run_daemon(&args),
        None => usage(),
    }
}

/// `snoopyd reshard`: drive a live fleet reconfiguration from the CLI.
fn run_reshard(args: &[String]) {
    let manifest_path = PathBuf::from(flag_value(args, "--manifest").unwrap_or_else(|| usage()));
    let manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snoopyd reshard: {e}");
            exit(1);
        }
    };
    let auto = args.iter().any(|a| a == "--auto");
    let explicit: Option<usize> = flag_value(args, "--new-s").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("snoopyd reshard: bad value for --new-s: {v}");
            exit(2)
        })
    });
    let new_s = match (explicit, auto) {
        (Some(n), false) => n,
        (None, true) => match auto_target(args, &manifest) {
            Some(n) => n,
            None => return, // already right-sized; auto_target printed why
        },
        _ => usage(),
    };
    let mut opts = snoopy_net::ReshardOptions::default();
    if let Some(ms) = flag_value(args, "--ttl-ms") {
        let ms: u64 = ms.parse().unwrap_or_else(|_| {
            eprintln!("snoopyd reshard: bad value for --ttl-ms: {ms}");
            exit(2)
        });
        opts.ttl = std::time::Duration::from_millis(ms.max(1));
    }
    match snoopy_net::reshard_cluster(&manifest, new_s, opts) {
        Ok(report) => {
            println!(
                "resharded: generation {} moved {} objects from {} to {} subORAMs \
                 ({} sealed batches per node per direction)",
                report.generation,
                report.objects_moved,
                report.old_s,
                report.new_s,
                report.batches_per_node
            );
        }
        Err(e) => {
            eprintln!("snoopyd reshard: {e}");
            exit(1);
        }
    }
}

/// `--auto`: observe the cluster's public request rate, ask the §6 planner
/// for the smallest sustaining fleet, and return it — or `None` (after
/// printing why) when the live fleet is already the answer.
fn auto_target(args: &[String], manifest: &Manifest) -> Option<usize> {
    let flag_f64 = |flag: &str, default: f64| -> f64 {
        match flag_value(args, flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("snoopyd reshard: bad value for {flag}: {v}");
                exit(2)
            }),
            None => default,
        }
    };
    let max_latency_ms = flag_f64("--max-latency-ms", 1000.0);
    // Provision for a multiple of the observed rate so the reshard completes
    // before the load catches up with the new fleet.
    let headroom = flag_f64("--headroom", 1.25);

    // The request counter and uptime are public by construction (request
    // volume is wire-observable; see the telemetry leakage gates).
    let mut total_requests = 0.0f64;
    let mut max_uptime = 0.0f64;
    for (i, addr) in manifest.load_balancers.iter().enumerate() {
        let text = match fetch_metrics(addr) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("snoopyd reshard: balancer {i} ({addr}) unreachable: {e}");
                exit(1);
            }
        };
        let scrape = match snoopy_telemetry::slo::parse_prometheus(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("snoopyd reshard: balancer {i} ({addr}) bad exposition: {e}");
                exit(1);
            }
        };
        total_requests += scrape.sum("snoopy_requests_total");
        max_uptime = max_uptime.max(scrape.sum("snoopy_uptime_seconds"));
    }
    let observed_rps = if max_uptime > 0.0 { total_requests / max_uptime } else { 0.0 };
    let req = snoopy_planner::Requirements {
        min_throughput_rps: (observed_rps * headroom).max(1.0),
        max_latency_ms,
        num_objects: manifest.num_objects,
    };
    let model = snoopy_netsim::costmodel::CostModel::paper_calibrated();
    let epoch_ns = manifest.epoch_ms.max(1) * 1_000_000;
    let target = snoopy_planner::recommend_suborams(
        &req,
        &model,
        manifest.load_balancers.len(),
        manifest.suborams.len(),
        epoch_ns,
    );
    let Some(target) = target else {
        eprintln!(
            "snoopyd reshard: observed {observed_rps:.0} rps needs more than the {} \
             provisioned subORAMs — provision machines, then reshard",
            manifest.suborams.len()
        );
        exit(1);
    };
    let live = snoopy_net::probe_layout(manifest, std::time::Duration::from_secs(5))
        .map(|(_, s)| s)
        .unwrap_or_else(|| manifest.initial_active());
    if target == live {
        println!(
            "already right-sized: {live} active subORAMs sustain {observed_rps:.0} rps \
             (headroom x{headroom})"
        );
        return None;
    }
    println!(
        "observed {observed_rps:.0} rps -> planner recommends {target} subORAMs (live: {live})"
    );
    Some(target)
}

fn run_daemon(args: &[String]) {
    let role = flag_value(args, "--role").unwrap_or_else(|| usage());
    let index: usize =
        flag_value(args, "--index").unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
    let manifest_path = PathBuf::from(flag_value(args, "--manifest").unwrap_or_else(|| usage()));
    let checkpoint = flag_value(args, "--checkpoint").map(PathBuf::from);

    let manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snoopyd: {e}");
            exit(1);
        }
    };
    let registry = StatsRegistry::new();
    let result = match role.as_str() {
        "loadbalancer" => {
            if checkpoint.is_some() {
                eprintln!("snoopyd: --checkpoint only applies to --role suboram");
                exit(2);
            }
            snoopy_net::lb_daemon::run(&manifest, index, &registry)
        }
        "suboram" => snoopy_net::suboram_daemon::run(&manifest, index, checkpoint, &registry),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("snoopyd ({role} {index}): {e}");
        exit(1);
    }
    // The epoch loop returned: graceful shutdown. Remaining service threads
    // (listeners, dialers) are blocked in I/O; the process exit reaps them.
    exit(0);
}
