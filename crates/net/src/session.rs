//! The per-session state machine of the readiness reactor: incremental
//! frame parsing, bounded outbound buffering, and the read/write sweep
//! steps — everything a session does *except* touch a real socket.
//!
//! The reactor (`crate::reactor`) drives one [`SessionIo`] per connection
//! over a nonblocking `TcpStream`; the unit tests here drive the same code
//! over in-memory fakes, which is what makes partial reads, split frames,
//! slow-drain writers, and half-close testable without sockets.
//!
//! Backpressure is explicit and never drops data. Inbound: when a session's
//! outbound buffer sits above its watermark, or too many of its frames are
//! still queued for a worker, the reactor simply stops reading that socket —
//! the kernel's receive window fills and TCP pushes back on the peer.
//! Outbound: [`OutBuf`] is bounded by a hard cap; a peer that cannot drain
//! its responses within the cap gets its session killed (the wire-level
//! equivalent of the old blocking plane's write timeout), and the epoch
//! protocol's replay machinery heals the loss. Within a live session, frames
//! are delivered in exactly the order they were enqueued: there is one
//! queue, appended under a lock, drained by one reactor thread.
//!
//! None of this touches payloads: the state machine sees sealed frames as
//! opaque `(tag, bytes)` pairs. What an observer of the reactor learns —
//! which sockets became readable when, how large each frame was — is
//! exactly what the network itself already reveals.

use crate::frame::MAX_FRAME_LEN;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Default read-pause watermark for a session's outbound buffer (bytes).
pub const DEFAULT_WATERMARK: usize = 256 << 10;
/// Default hard cap on a session's outbound buffer (bytes). One maximum
/// frame always fits above the cap check, so a single oversized epoch batch
/// cannot kill a healthy session.
pub const DEFAULT_HARD_CAP: usize = 64 << 20;
/// Default bound on frames parsed but not yet processed by a worker.
pub const DEFAULT_INFLIGHT_CAP: usize = 64;

/// Incremental frame parser: feed arbitrary byte chunks, pop complete
/// `(tag, body)` frames. The streaming twin of [`crate::frame::read_frame`],
/// which blocks for a whole frame and so cannot be used on a nonblocking
/// socket.
#[derive(Default)]
pub struct FrameAssembler {
    buf: VecDeque<u8>,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends raw bytes from the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet popped as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Read sweep: reads from `r` until it would block, hits EOF, or
    /// `max_bytes` arrive this sweep (one peer cannot monopolize the
    /// reactor), parsing every complete frame. Fatal errors (including a
    /// malformed length) kill the session.
    pub fn read_from(&mut self, r: &mut impl Read, max_bytes: usize) -> io::Result<ReadStep> {
        let mut frames = Vec::new();
        let mut buf = [0u8; 16 << 10];
        let mut taken = 0;
        loop {
            match r.read(&mut buf) {
                Ok(0) => {
                    while let Some(f) = self.next_frame()? {
                        frames.push(f);
                    }
                    return Ok(ReadStep::Eof(frames));
                }
                Ok(n) => {
                    self.extend(&buf[..n]);
                    while let Some(f) = self.next_frame()? {
                        frames.push(f);
                    }
                    taken += n;
                    if taken >= max_bytes {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(ReadStep::Frames(frames))
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are needed.
    /// A zero or oversized length is a protocol error (hostile or corrupt
    /// peer); the caller must kill the session.
    pub fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            len_bytes[i] = *b;
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        let tag = self.buf.pop_front().expect("length checked");
        let body: Vec<u8> = self.buf.drain(..len - 1).collect();
        Ok(Some((tag, body)))
    }
}

/// The outbound buffer is full: the peer has not drained `hard_cap` bytes of
/// already-accepted frames. Callers kill the session (fail-fast) rather than
/// drop or reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow;

/// Bounded outbound byte queue. Frames are encoded at enqueue time and
/// drained strictly in order by the reactor's write sweep; partial writes
/// leave a front offset, so a slow peer never sees bytes out of order.
pub struct OutBuf {
    chunks: VecDeque<Vec<u8>>,
    front_off: usize,
    pending: usize,
    watermark: usize,
    hard_cap: usize,
}

impl OutBuf {
    /// Creates a buffer with the given read-pause watermark and hard cap.
    pub fn new(watermark: usize, hard_cap: usize) -> OutBuf {
        OutBuf { chunks: VecDeque::new(), front_off: 0, pending: 0, watermark, hard_cap }
    }

    /// Encodes and enqueues one frame. Errors (without enqueuing anything)
    /// if `hard_cap` bytes are already pending — the frame is never
    /// truncated or partially accepted.
    pub fn push_frame(&mut self, tag: u8, body: &[u8]) -> Result<(), Overflow> {
        if self.pending >= self.hard_cap {
            return Err(Overflow);
        }
        let len = body.len() + 1;
        let mut chunk = Vec::with_capacity(4 + len);
        chunk.extend_from_slice(&(len as u32).to_le_bytes());
        chunk.push(tag);
        chunk.extend_from_slice(body);
        self.pending += chunk.len();
        self.chunks.push_back(chunk);
        Ok(())
    }

    /// Bytes enqueued but not yet written to the socket.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when nothing is pending (a drain-to-close can complete).
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// True when the buffer is above its read-pause watermark.
    pub fn over_watermark(&self) -> bool {
        self.pending > self.watermark
    }

    /// The next contiguous byte range to write, if any.
    pub fn next_slice(&self) -> Option<&[u8]> {
        self.chunks.front().map(|c| &c[self.front_off..])
    }

    /// Advances past `n` written bytes (may end mid-chunk).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.chunks.front().map_or(0, |c| c.len() - self.front_off));
        self.pending -= n;
        self.front_off += n;
        if self.chunks.front().is_some_and(|c| self.front_off == c.len()) {
            self.chunks.pop_front();
            self.front_off = 0;
        }
    }

    /// Write sweep: drains outbound bytes into `w` until it would block,
    /// errors, or the buffer empties. Returns bytes written this sweep;
    /// `WouldBlock`/`Interrupted` are not errors, anything else is fatal to
    /// the session.
    pub fn drain_into(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut total = 0;
        while let Some(slice) = self.next_slice() {
            match w.write(slice) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.consume(n);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

/// What one read sweep over a session produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadStep {
    /// Zero or more complete frames arrived (possibly none: a partial frame
    /// is buffered). The connection is still open.
    Frames(Vec<(u8, Vec<u8>)>),
    /// The peer half-closed its write side (`read` returned 0). Any frames
    /// parsed from the final bytes are included; the session should drain
    /// its outbound buffer and then close.
    Eof(Vec<(u8, Vec<u8>)>),
}

/// Per-session I/O state: the inbound assembler plus the outbound buffer.
/// The reactor owns one per connection; tests drive it with in-memory
/// readers/writers.
pub struct SessionIo {
    /// Inbound partial-frame assembly.
    pub assembler: FrameAssembler,
    /// Outbound bounded queue.
    pub out: OutBuf,
    /// Pause reads when this many parsed frames await a worker.
    pub inflight_cap: usize,
}

impl Default for SessionIo {
    fn default() -> SessionIo {
        SessionIo::new(DEFAULT_WATERMARK, DEFAULT_HARD_CAP, DEFAULT_INFLIGHT_CAP)
    }
}

impl SessionIo {
    /// Creates session state with the given backpressure bounds.
    pub fn new(watermark: usize, hard_cap: usize, inflight_cap: usize) -> SessionIo {
        SessionIo {
            assembler: FrameAssembler::new(),
            out: OutBuf::new(watermark, hard_cap),
            inflight_cap,
        }
    }

    /// True when the reactor should *not* read this session: its outbound
    /// buffer is over the watermark (peer slow to drain) or too many of its
    /// frames are still queued for a worker. Paused reads are the
    /// backpressure mechanism — bytes accumulate in the kernel and TCP flow
    /// control pushes back on the peer; nothing is dropped.
    pub fn paused(&self, inflight: usize) -> bool {
        self.out.over_watermark() || inflight >= self.inflight_cap
    }

    /// Write sweep over the owned [`OutBuf`]; see [`OutBuf::drain_into`].
    pub fn drain_into(&mut self, w: &mut impl Write) -> io::Result<usize> {
        self.out.drain_into(w)
    }

    /// Read sweep over the owned [`FrameAssembler`]; see
    /// [`FrameAssembler::read_from`].
    pub fn read_from(&mut self, r: &mut impl Read, max_bytes: usize) -> io::Result<ReadStep> {
        self.assembler.read_from(r, max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    /// A scripted nonblocking reader: each entry is either bytes to return
    /// (split however the script says), a `WouldBlock`, or EOF (empty vec
    /// terminator).
    struct ScriptedReader {
        script: VecDeque<Option<Vec<u8>>>,
        eof_after: bool,
    }

    impl ScriptedReader {
        fn new(script: Vec<Option<Vec<u8>>>, eof_after: bool) -> ScriptedReader {
            ScriptedReader { script: script.into(), eof_after }
        }
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script chunk exceeds read buffer");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(io::ErrorKind::WouldBlock.into()),
                None if self.eof_after => Ok(0),
                None => Err(io::ErrorKind::WouldBlock.into()),
            }
        }
    }

    /// A writer that accepts at most `per_call` bytes per write and a
    /// scripted number of `WouldBlock`s in between — a slow-draining peer.
    struct SlowWriter {
        accepted: Vec<u8>,
        per_call: usize,
        block_every: usize,
        calls: usize,
    }

    impl SlowWriter {
        fn new(per_call: usize, block_every: usize) -> SlowWriter {
            SlowWriter { accepted: Vec::new(), per_call, block_every, calls: 0 }
        }
    }

    impl Write for SlowWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.block_every != 0 && self.calls.is_multiple_of(self.block_every) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn encode(tag: u8, body: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, tag, body).unwrap();
        wire
    }

    #[test]
    fn assembler_handles_split_frames() {
        // One frame delivered a byte at a time, then two frames in one read.
        let wire = encode(7, b"hello");
        let mut asm = FrameAssembler::new();
        for (i, b) in wire.iter().enumerate() {
            asm.extend(&[*b]);
            let got = asm.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some((7, b"hello".to_vec())));
            }
        }
        let mut two = encode(1, b"a");
        two.extend_from_slice(&encode(2, b"bb"));
        asm.extend(&two);
        assert_eq!(asm.next_frame().unwrap(), Some((1, b"a".to_vec())));
        assert_eq!(asm.next_frame().unwrap(), Some((2, b"bb".to_vec())));
        assert_eq!(asm.next_frame().unwrap(), None);
    }

    #[test]
    fn assembler_rejects_bad_lengths() {
        let mut asm = FrameAssembler::new();
        asm.extend(&[0, 0, 0, 0]); // zero length
        assert!(asm.next_frame().is_err());
        let mut asm = FrameAssembler::new();
        asm.extend(&u32::MAX.to_le_bytes()); // oversized
        assert!(asm.next_frame().is_err());
    }

    #[test]
    fn read_step_partial_reads_across_wouldblocks() {
        // A frame split across three readable windows separated by
        // WouldBlocks: each sweep returns no frame until the last byte lands.
        let wire = encode(9, b"partial");
        let (a, rest) = wire.split_at(3);
        let (b, c) = rest.split_at(4);
        let mut r = ScriptedReader::new(
            vec![Some(a.to_vec()), None, Some(b.to_vec()), None, Some(c.to_vec())],
            false,
        );
        let mut io = SessionIo::default();
        assert_eq!(io.read_from(&mut r, usize::MAX).unwrap(), ReadStep::Frames(vec![]));
        assert_eq!(io.read_from(&mut r, usize::MAX).unwrap(), ReadStep::Frames(vec![]));
        assert_eq!(
            io.read_from(&mut r, usize::MAX).unwrap(),
            ReadStep::Frames(vec![(9, b"partial".to_vec())])
        );
    }

    #[test]
    fn read_step_half_close_flushes_trailing_frames() {
        // Peer sends two frames then half-closes: EOF must still surface the
        // final parsed frames so none are lost.
        let mut wire = encode(4, b"one");
        wire.extend_from_slice(&encode(4, b"two"));
        let mut r = ScriptedReader::new(vec![Some(wire)], true);
        let mut io = SessionIo::default();
        match io.read_from(&mut r, usize::MAX).unwrap() {
            ReadStep::Frames(f) => {
                assert_eq!(f.len(), 2);
                // Next sweep sees the EOF.
                match io.read_from(&mut r, usize::MAX).unwrap() {
                    ReadStep::Eof(rest) => assert!(rest.is_empty()),
                    other => panic!("expected EOF, got {other:?}"),
                }
            }
            ReadStep::Eof(f) => assert_eq!(f.len(), 2),
        }
    }

    #[test]
    fn slow_drain_writer_preserves_byte_order() {
        // Enqueue many frames, drain through a writer that takes 3 bytes at
        // a time and blocks every 5th call: the accepted byte stream must be
        // exactly the concatenation of the frames, in order.
        let mut io = SessionIo::default();
        let mut expect = Vec::new();
        for i in 0..20u8 {
            let body = vec![i; (i as usize % 7) + 1];
            io.out.push_frame(i, &body).unwrap();
            expect.extend_from_slice(&encode(i, &body));
        }
        let mut w = SlowWriter::new(3, 5);
        while !io.out.is_empty() {
            io.drain_into(&mut w).unwrap();
        }
        assert_eq!(w.accepted, expect);
    }

    #[test]
    fn backpressure_pauses_reads_but_never_drops_or_reorders() {
        // Regression: with a tiny watermark and a slow peer, the session
        // pauses reads (backpressure) yet every enqueued frame is delivered
        // exactly once, in order.
        let mut io = SessionIo::new(64, 1 << 20, 4);
        let mut expect = Vec::new();
        for i in 0..50u8 {
            io.out.push_frame(10, &[i; 16]).unwrap();
            expect.extend_from_slice(&encode(10, &[i; 16]));
        }
        assert!(io.paused(0), "over-watermark session must pause reads");
        // Inflight cap pauses too, independently of the outbuf.
        let fresh = SessionIo::default();
        assert!(fresh.paused(DEFAULT_INFLIGHT_CAP));
        assert!(!fresh.paused(0));

        let mut w = SlowWriter::new(7, 0);
        let mut sweeps = 0;
        while !io.out.is_empty() {
            io.drain_into(&mut w).unwrap();
            sweeps += 1;
            assert!(sweeps < 10_000, "drain did not make progress");
        }
        assert!(!io.paused(0), "drained session must resume reads");
        assert_eq!(w.accepted, expect, "frames dropped or reordered under backpressure");
    }

    #[test]
    fn outbuf_hard_cap_refuses_without_corrupting() {
        let mut out = OutBuf::new(8, 32);
        out.push_frame(1, &[0; 40]).unwrap(); // first frame always fits
        assert_eq!(out.push_frame(1, b"more"), Err(Overflow));
        // The refused frame left no partial bytes behind.
        assert_eq!(out.pending(), 4 + 1 + 40);
        // Draining past the cap re-admits frames.
        let mut w = SlowWriter::new(usize::MAX, 0);
        let mut io = SessionIo { assembler: FrameAssembler::new(), out, inflight_cap: 1 };
        io.drain_into(&mut w).unwrap();
        assert!(io.out.push_frame(2, b"ok").is_ok());
    }

    #[test]
    fn write_error_is_fatal() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::ErrorKind::BrokenPipe.into())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut io = SessionIo::default();
        io.out.push_frame(1, b"x").unwrap();
        assert_eq!(io.drain_into(&mut Broken).unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn read_budget_bounds_one_sweep() {
        // A firehose peer: read_from must stop at max_bytes even though more
        // is readable, so one session cannot monopolize the reactor.
        let frame = encode(3, &[7; 100]);
        let script: Vec<Option<Vec<u8>>> = (0..32).map(|_| Some(frame.clone())).collect();
        let mut r = ScriptedReader::new(script, false);
        let mut io = SessionIo::default();
        match io.read_from(&mut r, 4 * frame.len()).unwrap() {
            ReadStep::Frames(f) => assert_eq!(f.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
