//! Per-link counters, exposed through the `stats` RPC.
//!
//! Every connection-owning component (a balancer's dialer to a subORAM, a
//! subORAM's accepted balancer session, a client session) updates one
//! [`LinkStats`] as it moves frames. A daemon's [`StatsRegistry`] snapshots
//! all of them into the plaintext text form the `snoopyd stats` subcommand
//! prints, and bridges them into the process's Prometheus registry for the
//! `metrics` RPC.
//!
//! Everything here is wire-observable: frame and byte counts are exactly
//! what a network attacker already sees (§2.1), so exporting them through
//! [`snoopy_telemetry::Public::wire_observable`] leaks nothing new.

use snoopy_telemetry::{metrics::MetricsRegistry, Public};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters for one link (shared across that link's reader/writer threads).
#[derive(Default, Debug)]
pub struct LinkStats {
    /// Frames written to the peer.
    pub frames_sent: AtomicU64,
    /// Frames read from the peer.
    pub frames_received: AtomicU64,
    /// Payload bytes written (frame bodies, excluding the 5-byte header).
    pub bytes_sent: AtomicU64,
    /// Payload bytes read.
    pub bytes_received: AtomicU64,
    /// Times the link was re-established after a failure (dialer side) or a
    /// replacement session was accepted (listener side).
    pub reconnects: AtomicU64,
    /// Failed dial attempts (each backoff retry that did not connect).
    pub retries: AtomicU64,
}

impl LinkStats {
    /// Records an outbound frame of `body_len` payload bytes.
    pub fn sent(&self, body_len: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Records an inbound frame of `body_len` payload bytes.
    pub fn received(&self, body_len: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Records a successful re-establishment.
    pub fn reconnected(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed dial attempt.
    pub fn retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, name: &str) -> String {
        format!(
            "link={} frames_sent={} frames_received={} bytes_sent={} bytes_received={} reconnects={} retries={}",
            name,
            self.frames_sent.load(Ordering::Relaxed),
            self.frames_received.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
        )
    }

    fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("frames_sent", self.frames_sent.load(Ordering::Relaxed)),
            ("frames_received", self.frames_received.load(Ordering::Relaxed)),
            ("bytes_sent", self.bytes_sent.load(Ordering::Relaxed)),
            ("bytes_received", self.bytes_received.load(Ordering::Relaxed)),
            ("reconnects", self.reconnects.load(Ordering::Relaxed)),
            ("retries", self.retries.load(Ordering::Relaxed)),
        ]
    }
}

/// All of one daemon's links, named.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    links: Arc<Mutex<HashMap<String, Arc<LinkStats>>>>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Registers (or fetches) the named link's counters. Re-registering a
    /// name returns the existing counters, so a link survives reconnects
    /// with its history intact. O(1): daemons call this on every accepted
    /// session, and a busy listener shouldn't scan all its peers each time.
    pub fn link(&self, name: &str) -> Arc<LinkStats> {
        let mut links = self.links.lock().unwrap();
        if let Some(stats) = links.get(name) {
            return stats.clone();
        }
        let stats = Arc::new(LinkStats::default());
        links.insert(name.to_string(), stats.clone());
        stats
    }

    /// Renders every link, one `key=value` line each, sorted by link name
    /// so output is deterministic — the `stats` RPC body.
    pub fn render(&self) -> String {
        let links = self.links.lock().unwrap();
        let mut named: Vec<_> = links.iter().collect();
        named.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        for (name, stats) in named {
            out.push_str(&stats.render(name));
            out.push('\n');
        }
        out
    }

    /// Bridges every link counter into `registry` as labeled Prometheus
    /// series (`snoopy_link_frames_sent_total{link="..."}` etc.).
    ///
    /// Prometheus counters are add-only while [`LinkStats`] holds absolute
    /// values, so each scrape adds the delta since the last publish. The
    /// delta is wire-observable — it counts frames/bytes an on-path
    /// attacker already sees — which is what lets it through the
    /// [`Public`] gate.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        let links = self.links.lock().unwrap();
        for (name, stats) in links.iter() {
            for (field, value) in stats.fields() {
                let counter = registry.counter_labeled(
                    &format!("snoopy_link_{field}_total"),
                    "per-link transport counters (wire-observable)",
                    Some(("link", name)),
                );
                let delta = value.saturating_sub(counter.value());
                if delta > 0 {
                    counter.add(Public::wire_observable(delta));
                }
            }
        }
    }
}

/// A daemon's identity and start time — the live source for [`StatsHeader`].
#[derive(Clone, Copy, Debug)]
pub struct DaemonInfo {
    /// Role string (`loadbalancer` or `suboram`).
    pub role: &'static str,
    /// Index within the role.
    pub index: u64,
    /// When the daemon started serving.
    pub started: std::time::Instant,
}

impl DaemonInfo {
    /// Stamps a daemon's identity with "now" as its start time.
    pub fn new(role: &'static str, index: u64) -> DaemonInfo {
        DaemonInfo { role, index, started: std::time::Instant::now() }
    }

    /// Builds the header from live process state: uptime from the start
    /// time, epochs from the process's telemetry registry (the balancer
    /// loop counts epochs directly; a subORAM executes one oblivious scan
    /// per epoch, so its scan histogram's count is its epoch count).
    pub fn header(&self) -> StatsHeader {
        use snoopy_telemetry::metrics;
        let epochs = if self.role == "suboram" {
            metrics::stage_histogram("suboram_scan").snapshot().count
        } else {
            metrics::global().counter(metrics::names::EPOCHS_TOTAL, "epochs executed").value()
        };
        StatsHeader {
            role: self.role.to_string(),
            index: self.index,
            uptime_secs: self.started.elapsed().as_secs(),
            epochs,
        }
    }
}

/// The header line of a `stats` response: who the daemon is and how long it
/// has been running. All fields are public (configuration and coarse
/// process age).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsHeader {
    /// Daemon role (`loadbalancer` or `suboram`).
    pub role: String,
    /// Daemon index within its role.
    pub index: u64,
    /// Whole seconds since the daemon started serving.
    pub uptime_secs: u64,
    /// Epochs this daemon has executed.
    pub epochs: u64,
}

impl StatsHeader {
    /// Renders the header as the first line of the `stats` body.
    pub fn render(&self) -> String {
        format!(
            "role={} index={} uptime_secs={} epochs={}",
            self.role, self.index, self.uptime_secs, self.epochs
        )
    }
}

/// A parsed `stats` line (used by tests and the CLI printer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsLine {
    /// Link name.
    pub link: String,
    /// `frames_sent`.
    pub frames_sent: u64,
    /// `frames_received`.
    pub frames_received: u64,
    /// `bytes_sent`.
    pub bytes_sent: u64,
    /// `bytes_received`.
    pub bytes_received: u64,
    /// `reconnects`.
    pub reconnects: u64,
    /// `retries`.
    pub retries: u64,
}

fn key_values(line: &str) -> HashMap<&str, &str> {
    let mut fields = HashMap::new();
    for part in line.split_whitespace() {
        if let Some((k, v)) = part.split_once('=') {
            fields.insert(k, v);
        }
    }
    fields
}

fn field_or_zero(fields: &HashMap<&str, &str>, key: &str) -> u64 {
    fields.get(key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Parses [`StatsRegistry::render`] output.
///
/// Forward compatible: a line only needs a `link=` field to count; numeric
/// fields that are missing or malformed default to 0 instead of dropping
/// the whole line, and unknown fields (from a newer daemon) are ignored.
/// Lines without `link=` (e.g. the [`StatsHeader`]) are skipped.
pub fn parse_stats(text: &str) -> Vec<StatsLine> {
    text.lines()
        .filter_map(|line| {
            let fields = key_values(line);
            Some(StatsLine {
                link: (*fields.get("link")?).to_string(),
                frames_sent: field_or_zero(&fields, "frames_sent"),
                frames_received: field_or_zero(&fields, "frames_received"),
                bytes_sent: field_or_zero(&fields, "bytes_sent"),
                bytes_received: field_or_zero(&fields, "bytes_received"),
                reconnects: field_or_zero(&fields, "reconnects"),
                retries: field_or_zero(&fields, "retries"),
            })
        })
        .collect()
}

/// Parses the [`StatsHeader`] out of a `stats` body, if present. Same
/// forward-compatibility rules as [`parse_stats`]: the `role=` field marks
/// a header line; everything else defaults.
pub fn parse_stats_header(text: &str) -> Option<StatsHeader> {
    text.lines().find_map(|line| {
        let fields = key_values(line);
        Some(StatsHeader {
            role: (*fields.get("role")?).to_string(),
            index: field_or_zero(&fields, "index"),
            uptime_secs: field_or_zero(&fields, "uptime_secs"),
            epochs: field_or_zero(&fields, "epochs"),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_and_parse() {
        let reg = StatsRegistry::new();
        let link = reg.link("suboram/0");
        link.sent(100);
        link.sent(50);
        link.received(25);
        link.reconnected();
        assert!(Arc::ptr_eq(&link, &reg.link("suboram/0")));
        let lines = parse_stats(&reg.render());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].link, "suboram/0");
        assert_eq!(lines[0].frames_sent, 2);
        assert_eq!(lines[0].bytes_sent, 150);
        assert_eq!(lines[0].frames_received, 1);
        assert_eq!(lines[0].reconnects, 1);
        assert_eq!(lines[0].retries, 0);
    }

    #[test]
    fn render_is_sorted_by_link_name() {
        let reg = StatsRegistry::new();
        for name in ["suboram/2", "client", "suboram/0", "suboram/1"] {
            reg.link(name);
        }
        let names: Vec<String> = parse_stats(&reg.render()).into_iter().map(|l| l.link).collect();
        assert_eq!(names, ["client", "suboram/0", "suboram/1", "suboram/2"]);
    }

    #[test]
    fn registration_is_safe_under_concurrency() {
        // Many threads hammering the same and distinct names must agree on
        // one LinkStats per name and lose no counts.
        let reg = StatsRegistry::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        reg.link("shared").sent(1);
                        reg.link(&format!("own/{t}")).sent(i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let lines = parse_stats(&reg.render());
        assert_eq!(lines.len(), 9); // "shared" + 8 per-thread links
        let shared = lines.iter().find(|l| l.link == "shared").unwrap();
        assert_eq!(shared.frames_sent, 8 * 200);
        for t in 0..8 {
            let own = lines.iter().find(|l| l.link == format!("own/{t}")).unwrap();
            assert_eq!(own.frames_sent, 200);
        }
    }

    #[test]
    fn parser_tolerates_missing_unknown_and_malformed_fields() {
        let text = "link=a frames_sent=3 future_field=9 bytes_sent=oops\n\
                    role=suboram index=1 uptime_secs=5 epochs=2\n\
                    garbage line with no equals\n\
                    link=b\n";
        let lines = parse_stats(text);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].link, "a");
        assert_eq!(lines[0].frames_sent, 3);
        assert_eq!(lines[0].bytes_sent, 0); // malformed value defaults
        assert_eq!(lines[1].link, "b");
        assert_eq!(lines[1].frames_received, 0); // missing fields default
        let header = parse_stats_header(text).unwrap();
        assert_eq!(
            header,
            StatsHeader { role: "suboram".into(), index: 1, uptime_secs: 5, epochs: 2 }
        );
        assert_eq!(parse_stats_header("link=a frames_sent=1\n"), None);
    }

    #[test]
    fn header_roundtrips() {
        let h = StatsHeader { role: "loadbalancer".into(), index: 3, uptime_secs: 77, epochs: 41 };
        assert_eq!(parse_stats_header(&h.render()), Some(h));
    }

    #[test]
    fn publish_metrics_bridges_absolute_counts_as_deltas() {
        let reg = StatsRegistry::new();
        let link = reg.link("suboram/0");
        link.sent(10);
        link.sent(10);
        let prom = MetricsRegistry::new();
        reg.publish_metrics(&prom);
        let text = prom.render_prometheus();
        assert!(text.contains("snoopy_link_frames_sent_total{link=\"suboram/0\"} 2"));
        assert!(text.contains("snoopy_link_bytes_sent_total{link=\"suboram/0\"} 20"));
        // Re-publishing without traffic must not double-count; with traffic
        // it catches up.
        reg.publish_metrics(&prom);
        assert!(prom
            .render_prometheus()
            .contains("snoopy_link_frames_sent_total{link=\"suboram/0\"} 2"));
        link.received(5);
        reg.publish_metrics(&prom);
        let text = prom.render_prometheus();
        assert!(text.contains("snoopy_link_frames_received_total{link=\"suboram/0\"} 1"));
        assert!(text.contains("snoopy_link_bytes_received_total{link=\"suboram/0\"} 5"));
    }
}
