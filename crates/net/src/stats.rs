//! Per-link counters, exposed through the `stats` RPC.
//!
//! Every connection-owning component (a balancer's dialer to a subORAM, a
//! subORAM's accepted balancer session, a client session) updates one
//! [`LinkStats`] as it moves frames. A daemon's [`StatsRegistry`] snapshots
//! all of them into the plaintext text form the `snoopyd stats` subcommand
//! prints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters for one link (shared across that link's reader/writer threads).
#[derive(Default, Debug)]
pub struct LinkStats {
    /// Frames written to the peer.
    pub frames_sent: AtomicU64,
    /// Frames read from the peer.
    pub frames_received: AtomicU64,
    /// Payload bytes written (frame bodies, excluding the 5-byte header).
    pub bytes_sent: AtomicU64,
    /// Payload bytes read.
    pub bytes_received: AtomicU64,
    /// Times the link was re-established after a failure (dialer side) or a
    /// replacement session was accepted (listener side).
    pub reconnects: AtomicU64,
    /// Failed dial attempts (each backoff retry that did not connect).
    pub retries: AtomicU64,
}

impl LinkStats {
    /// Records an outbound frame of `body_len` payload bytes.
    pub fn sent(&self, body_len: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Records an inbound frame of `body_len` payload bytes.
    pub fn received(&self, body_len: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Records a successful re-establishment.
    pub fn reconnected(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed dial attempt.
    pub fn retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, name: &str) -> String {
        format!(
            "link={} frames_sent={} frames_received={} bytes_sent={} bytes_received={} reconnects={} retries={}",
            name,
            self.frames_sent.load(Ordering::Relaxed),
            self.frames_received.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
        )
    }
}

/// All of one daemon's links, named.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    links: Arc<Mutex<Vec<(String, Arc<LinkStats>)>>>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Registers (or fetches) the named link's counters. Re-registering a
    /// name returns the existing counters, so a link survives reconnects
    /// with its history intact.
    pub fn link(&self, name: &str) -> Arc<LinkStats> {
        let mut links = self.links.lock().unwrap();
        if let Some((_, stats)) = links.iter().find(|(n, _)| n == name) {
            return stats.clone();
        }
        let stats = Arc::new(LinkStats::default());
        links.push((name.to_string(), stats.clone()));
        stats
    }

    /// Renders every link, one `key=value` line each — the `stats` RPC body.
    pub fn render(&self) -> String {
        let links = self.links.lock().unwrap();
        let mut out = String::new();
        for (name, stats) in links.iter() {
            out.push_str(&stats.render(name));
            out.push('\n');
        }
        out
    }
}

/// A parsed `stats` line (used by tests and the CLI printer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsLine {
    /// Link name.
    pub link: String,
    /// `frames_sent`.
    pub frames_sent: u64,
    /// `frames_received`.
    pub frames_received: u64,
    /// `bytes_sent`.
    pub bytes_sent: u64,
    /// `bytes_received`.
    pub bytes_received: u64,
    /// `reconnects`.
    pub reconnects: u64,
    /// `retries`.
    pub retries: u64,
}

/// Parses [`StatsRegistry::render`] output.
pub fn parse_stats(text: &str) -> Vec<StatsLine> {
    text.lines()
        .filter_map(|line| {
            let mut fields = std::collections::HashMap::new();
            for part in line.split_whitespace() {
                let (k, v) = part.split_once('=')?;
                fields.insert(k, v);
            }
            Some(StatsLine {
                link: (*fields.get("link")?).to_string(),
                frames_sent: fields.get("frames_sent")?.parse().ok()?,
                frames_received: fields.get("frames_received")?.parse().ok()?,
                bytes_sent: fields.get("bytes_sent")?.parse().ok()?,
                bytes_received: fields.get("bytes_received")?.parse().ok()?,
                reconnects: fields.get("reconnects")?.parse().ok()?,
                retries: fields.get("retries")?.parse().ok()?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_and_parse() {
        let reg = StatsRegistry::new();
        let link = reg.link("suboram/0");
        link.sent(100);
        link.sent(50);
        link.received(25);
        link.reconnected();
        assert!(Arc::ptr_eq(&link, &reg.link("suboram/0")));
        let lines = parse_stats(&reg.render());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].link, "suboram/0");
        assert_eq!(lines[0].frames_sent, 2);
        assert_eq!(lines[0].bytes_sent, 150);
        assert_eq!(lines[0].frames_received, 1);
        assert_eq!(lines[0].reconnects, 1);
        assert_eq!(lines[0].retries, 0);
    }
}
