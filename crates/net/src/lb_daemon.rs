//! The load-balancer daemon: a `snoopyd --role loadbalancer` process.
//!
//! The balancer *dials* every subORAM (the dialer owns reconnection): each
//! subORAM gets a dedicated dialer thread that connects under
//! [`RetryPolicy::dialer_default`] (capped exponential backoff, forever),
//! performs the session hello, then reads sealed response batches until the
//! connection dies — at which point it loops back to redialing. Establishing
//! a session emits [`LbEvent::SubLinkRestored`], which makes the epoch loop
//! resend the in-flight epoch's batch, so a subORAM killed and restarted
//! mid-epoch is healed end to end (its reply cache absorbs duplicate
//! deliveries).
//!
//! The epoch loop runs under the manifest's [`Manifest::fault_policy`]: a
//! subORAM that misses the per-epoch deadline has its link killed and its
//! sealed batch replayed over a fresh session; after `max_replays` waves the
//! epoch completes *degraded* and every affected client gets a typed
//! [`tag::CLIENT_FAIL`] frame instead of a hang.
//!
//! Clients and admins dial the balancer's own listen address. The epoch
//! ticker derives epoch ids from wall-clock time (`unix_millis / epoch_ms`)
//! and catches up on any ids it slept through, so ids stay monotone across a
//! balancer restart and aligned across balancers.

use crate::frame::{read_frame, write_frame};
use crate::manifest::Manifest;
use crate::proto::{self, tag, Hello, Role};
use crate::stats::{DaemonInfo, LinkStats, StatsRegistry};
use crate::suboram_daemon::admin_session;
use snoopy_core::link::Link;
use snoopy_core::transport::{
    run_load_balancer_with_policy, LbEvent, LbTransport, RecvOutcome, ReplySink, Unavailable,
};
use snoopy_core::RetryPolicy;
use snoopy_crypto::{Key256, Prg};
use snoopy_enclave::wire::{Request, Response};
use snoopy_lb::LoadBalancer;
use snoopy_telemetry::{metrics, trace, Public};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// The write half of one subORAM session.
struct SubConn {
    stream: TcpStream,
    batch_link: Link,
}

type SubSlots = Arc<Vec<Mutex<Option<SubConn>>>>;

struct TcpLbTransport {
    events: Receiver<LbEvent>,
    subs: SubSlots,
    sub_stats: Vec<Arc<LinkStats>>,
}

impl LbTransport for TcpLbTransport {
    fn recv(&mut self) -> Option<LbEvent> {
        self.events.recv().ok()
    }

    fn recv_deadline(&mut self, deadline: Instant) -> RecvOutcome {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.events.recv_timeout(wait) {
            Ok(ev) => RecvOutcome::Event(ev),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }

    fn fail_fast(&mut self, suboram: usize) {
        // Kill the session so the dialer's read side errors immediately and
        // starts redialing; the epoch loop replays the sealed batch over the
        // fresh session.
        let mut slot = self.subs[suboram].lock().unwrap();
        if let Some(conn) = slot.take() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn send_batch(&mut self, suboram: usize, epoch: u64, batch: &[Request]) {
        let mut slot = self.subs[suboram].lock().unwrap();
        let Some(conn) = slot.as_mut() else {
            // Disconnected: drop the batch. SubLinkRestored will trigger a
            // resend once the dialer re-establishes the session.
            return;
        };
        let sealed = match conn.batch_link.seal(batch) {
            Ok(s) => s,
            Err(_) => {
                *slot = None;
                return;
            }
        };
        let body = proto::encode_epoch_sealed(epoch, &sealed);
        match write_frame(&mut conn.stream, tag::BATCH, &body) {
            Ok(()) => self.sub_stats[suboram].sent(body.len()),
            Err(_) => {
                // Kill the socket so the dialer's read side fails fast and
                // starts reconnecting.
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                *slot = None;
            }
        }
    }
}

/// A client connection's write half, shared by that connection's sinks.
struct ClientWriter {
    stream: TcpStream,
    resp_link: Link,
}

struct TcpReplySink {
    writer: Arc<Mutex<ClientWriter>>,
    stats: Arc<LinkStats>,
    /// The client-chosen request seq, captured at enqueue time so a degraded
    /// epoch can name which request the `CLIENT_FAIL` frame is for.
    seq: u64,
}

impl ReplySink for TcpReplySink {
    fn deliver(self: Box<Self>, resp: Response) {
        let mut w = self.writer.lock().unwrap();
        let Ok(sealed) = w.resp_link.seal_responses(&[resp]) else { return };
        match write_frame(&mut w.stream, tag::CLIENT_RESP, &sealed.bytes) {
            Ok(()) => self.stats.sent(sealed.bytes.len()),
            Err(_) => {
                let _ = w.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn fail(self: Box<Self>, err: Unavailable) {
        let body = proto::encode_unavailable(self.seq, &err);
        let mut w = self.writer.lock().unwrap();
        match write_frame(&mut w.stream, tag::CLIENT_FAIL, &body) {
            Ok(()) => self.stats.sent(body.len()),
            Err(_) => {
                let _ = w.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Runs the load-balancer daemon until an admin shutdown.
pub fn run(manifest: &Manifest, index: usize, registry: &StatsRegistry) -> io::Result<()> {
    if index >= manifest.load_balancers.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "loadbalancer index {index} out of range (manifest has {})",
                manifest.load_balancers.len()
            ),
        ));
    }
    let num_suborams = manifest.suborams.len();
    let mut prg = Prg::from_seed(manifest.seed);
    let shared_key = Key256::random(&mut prg);
    let deploy = proto::deployment_key(manifest.seed);
    let balancer =
        LoadBalancer::new(&shared_key, num_suborams, manifest.value_len, manifest.lambda)
            .with_threads(manifest.lb_threads as usize);

    let listener = TcpListener::bind(&manifest.load_balancers[index])?;
    let (events_tx, events_rx) = channel();
    let subs: SubSlots = Arc::new((0..num_suborams).map(|_| Mutex::new(None)).collect());
    let mut sub_stats = Vec::with_capacity(num_suborams);

    // Dialer threads: one per subORAM, owning connect/backoff/read.
    for sub in 0..num_suborams {
        let stats = registry.link(&format!("suboram/{sub}"));
        sub_stats.push(stats.clone());
        let ctx = DialerCtx {
            addr: manifest.suborams[sub].clone(),
            lb_index: index,
            sub,
            num_suborams,
            deploy: deploy.clone(),
            value_len: manifest.value_len,
            subs: subs.clone(),
            events_tx: events_tx.clone(),
            stats,
        };
        std::thread::spawn(move || dialer(ctx));
    }

    // Client/admin listener.
    {
        let events_tx = events_tx.clone();
        let registry = registry.clone();
        let deploy = deploy.clone();
        let value_len = manifest.value_len;
        let info = DaemonInfo::new("loadbalancer", index as u64);
        std::thread::spawn(move || {
            client_accept_loop(listener, index, deploy, value_len, events_tx, registry, info)
        });
    }

    // Epoch ticker. Epoch ids are derived from wall-clock time so that
    // (a) they stay monotone across a balancer crash/restart — the subORAM
    // reply caches key on (lb, epoch), and a restarted balancer must not
    // reuse old ids for new batches — and (b) multiple balancers agree on
    // the current epoch without coordination. Any ids slept through (clock
    // hiccup, scheduler stall) are caught up in order: subORAMs wait for
    // *every* balancer's batch per epoch, so skipping one would deadlock.
    {
        let events_tx = events_tx.clone();
        let epoch_ms = manifest.epoch_ms.max(1);
        let interval = Duration::from_millis(epoch_ms);
        std::thread::spawn(move || {
            let mut last = wall_epoch(epoch_ms);
            loop {
                std::thread::sleep(interval);
                let now = wall_epoch(epoch_ms);
                for epoch in (last + 1)..=now {
                    if events_tx.send(LbEvent::Tick(epoch)).is_err() {
                        return;
                    }
                }
                last = last.max(now);
            }
        });
    }

    let mut transport = TcpLbTransport { events: events_rx, subs, sub_stats };
    run_load_balancer_with_policy(&mut transport, balancer, num_suborams, manifest.fault_policy());
    Ok(())
}

/// The wall-clock epoch id: `unix_millis / epoch_ms`.
fn wall_epoch(epoch_ms: u64) -> u64 {
    let millis = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    millis / epoch_ms
}

/// Everything one dialer thread needs to own its subORAM connection.
struct DialerCtx {
    addr: String,
    lb_index: usize,
    sub: usize,
    num_suborams: usize,
    deploy: Key256,
    value_len: usize,
    subs: SubSlots,
    events_tx: Sender<LbEvent>,
    stats: Arc<LinkStats>,
}

/// Connects to one subORAM forever: dial with capped exponential backoff,
/// hello, install the session, then read responses until the link dies.
fn dialer(ctx: DialerCtx) {
    let DialerCtx { addr, lb_index, sub, num_suborams, deploy, value_len, subs, events_tx, stats } =
        ctx;
    let mut established_before = false;
    loop {
        // Dial under the dialer policy: capped exponential backoff with
        // deterministic jitter, retrying forever (the balancer cannot make
        // progress without this link). The dial span covers
        // connect-through-hello: connection establishment against a public
        // address is wire-observable timing.
        let dial_span = trace::span("dial");
        let policy = RetryPolicy::dialer_default().jitter_seed(sub as u64);
        let Ok(mut stream) = policy.run(|attempt| {
            if attempt > 0 {
                stats.retried();
            }
            TcpStream::connect(&addr)
        }) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let hello = Hello::new(Role::LoadBalancer, lb_index as u64);
        if write_frame(&mut stream, tag::HELLO, &hello.encode()).is_err() {
            continue;
        }
        metrics::stage_histogram("dial").observe(Public::timing(dial_span.finish()));
        let (batch_link, mut resp_link) =
            proto::suboram_session_links(&deploy, lb_index, sub, num_suborams, hello.session);
        let Ok(write_half) = stream.try_clone() else { continue };
        *subs[sub].lock().unwrap() = Some(SubConn { stream: write_half, batch_link });
        if established_before {
            stats.reconnected();
        }
        established_before = true;
        if events_tx.send(LbEvent::SubLinkRestored { suboram: sub }).is_err() {
            return; // balancer loop gone: daemon is shutting down
        }

        while let Ok((t, body)) = read_frame(&mut stream) {
            stats.received(body.len());
            if t == tag::RESP_ERR {
                // Typed refusal: plaintext epoch id. Forward it so the epoch
                // loop can degrade immediately instead of replaying a batch
                // the subORAM will deterministically refuse again.
                let Ok(bytes) = <[u8; 8]>::try_from(&body[..]) else { break };
                let epoch = u64::from_le_bytes(bytes);
                if events_tx.send(LbEvent::SubFailed { suboram: sub, epoch }).is_err() {
                    return;
                }
                continue;
            }
            if t != tag::RESP_BATCH {
                break;
            }
            let Some((epoch, sealed)) = proto::decode_epoch_sealed(&body) else { break };
            let Ok(batch) = resp_link.open(&sealed, value_len) else { break };
            if events_tx.send(LbEvent::SubResponse { suboram: sub, epoch, batch }).is_err() {
                return;
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
        *subs[sub].lock().unwrap() = None;
    }
}

fn client_accept_loop(
    listener: TcpListener,
    lb_index: usize,
    deploy: Key256,
    value_len: usize,
    events_tx: Sender<LbEvent>,
    registry: StatsRegistry,
    info: DaemonInfo,
) {
    let mut client_counter = 0u64;
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok((tag::HELLO, body)) = read_frame(&mut stream) else { continue };
        let Some(hello) = Hello::decode(&body) else { continue };
        let _ = stream.set_read_timeout(None);
        match hello.role {
            Role::Client => {
                client_counter += 1;
                let stats = registry.link(&format!("client/{client_counter}"));
                let (req_link, resp_link) =
                    proto::client_session_links(&deploy, lb_index, hello.session);
                let Ok(write_half) = stream.try_clone() else { continue };
                let writer = Arc::new(Mutex::new(ClientWriter { stream: write_half, resp_link }));
                let events_tx = events_tx.clone();
                std::thread::spawn(move || {
                    client_session_reader(stream, req_link, value_len, writer, events_tx, stats)
                });
            }
            Role::Admin => {
                let events_tx = events_tx.clone();
                let registry = registry.clone();
                std::thread::spawn(move || {
                    admin_session(stream, registry, info, move || {
                        let _ = events_tx.send(LbEvent::Shutdown);
                    })
                });
            }
            // Balancers do not dial balancers.
            Role::LoadBalancer => {}
        }
    }
}

fn client_session_reader(
    mut stream: TcpStream,
    mut req_link: Link,
    value_len: usize,
    writer: Arc<Mutex<ClientWriter>>,
    events_tx: Sender<LbEvent>,
    stats: Arc<LinkStats>,
) {
    while let Ok((t, body)) = read_frame(&mut stream) {
        stats.received(body.len());
        if t != tag::CLIENT_REQ {
            break;
        }
        let sealed = snoopy_crypto::aead::SealedBox { bytes: body };
        let Ok(batch) = req_link.open(&sealed, value_len) else { break };
        for req in batch {
            let sink = TcpReplySink { writer: writer.clone(), stats: stats.clone(), seq: req.seq };
            if events_tx.send(LbEvent::Client(req, Box::new(sink))).is_err() {
                return;
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
