//! The load-balancer daemon: a `snoopyd --role loadbalancer` process.
//!
//! The balancer *dials* every subORAM (the dialer owns reconnection): each
//! subORAM gets one dedicated dialer thread — per *peer*, not per session —
//! that connects under [`RetryPolicy::dialer_default`] (capped exponential
//! backoff, forever), performs the session hello, then hands the socket to
//! the readiness reactor and parks until the session dies, at which point it
//! redials. Establishing a session emits [`LbEvent::SubLinkRestored`], which
//! makes the epoch loop resend the in-flight epoch's batch, so a subORAM
//! killed and restarted mid-epoch is healed end to end (its reply cache
//! absorbs duplicate deliveries).
//!
//! The epoch loop runs under the manifest's [`Manifest::fault_policy`]: a
//! subORAM that misses the per-epoch deadline has its link killed and its
//! sealed batch replayed over a fresh session; after `max_replays` waves the
//! epoch completes *degraded* and every affected client gets a typed
//! [`tag::CLIENT_FAIL`] frame instead of a hang.
//!
//! Clients and admins dial the balancer's own listen address; every accepted
//! session is multiplexed onto the reactor ([`crate::reactor`]) — tens of
//! thousands of concurrent client sessions cost sockets, not threads. The
//! epoch ticker ([`EpochTicker`]) derives *composite* epoch ids from
//! wall-clock time: balancer `i` of `L` ticks `(unix_millis / epoch_ms) * L + i`,
//! its own residue class, so ids are globally unique across balancers
//! (`id % L` names the owner), stay monotone across a balancer
//! crash/restart, and never decrease under a backwards wall-clock step (the
//! ticker clamps instead of reusing an id).

use crate::frame::write_frame;
use crate::manifest::Manifest;
use crate::proto::{self, tag, Hello, Role};
use crate::reactor::{self, Control, ReactorConfig, ReactorHandle, SessionHandle, SessionHandler};
use crate::reshard;
use crate::stats::{DaemonInfo, LinkStats, StatsRegistry};
use crate::suboram_daemon::{net_workers, record_peer_clock_offset, AdminHandler};
use snoopy_core::link::Link;
use snoopy_core::transport::{
    run_load_balancer_with_reshard, LbEvent, LbTransport, RecvOutcome, ReplySink, ReshardControl,
    Unavailable,
};
use snoopy_core::RetryPolicy;
use snoopy_crypto::{Key256, Prg};
use snoopy_enclave::wire::{Request, Response};
use snoopy_lb::LoadBalancer;
use snoopy_telemetry::events::{self, Event, EventKind};
use snoopy_telemetry::{metrics, trace, Public};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// The write side of one subORAM session: the reactor handle plus this
/// session's batch-direction link.
struct SubSession {
    handle: SessionHandle,
    batch_link: Link,
}

type SubSlots = Arc<Vec<Mutex<Option<SubSession>>>>;

struct TcpLbTransport {
    events: Receiver<LbEvent>,
    subs: SubSlots,
    sub_stats: Vec<Arc<LinkStats>>,
    lb_index: u64,
    /// Per-subORAM send sequencing for the frame trace context: `(epoch,
    /// next_seq)`. Seq 0 is the first send of an epoch's batch; higher seqs
    /// are replay waves — all wire-observable (the adversary counts frames).
    send_seq: Vec<(u64, u64)>,
}

impl LbTransport for TcpLbTransport {
    fn recv(&mut self) -> Option<LbEvent> {
        self.events.recv().ok()
    }

    fn recv_deadline(&mut self, deadline: Instant) -> RecvOutcome {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.events.recv_timeout(wait) {
            Ok(ev) => RecvOutcome::Event(ev),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }

    fn fail_fast(&mut self, suboram: usize) {
        // Kill the session so its handler's close notification wakes the
        // dialer, which starts redialing; the epoch loop replays the sealed
        // batch over the fresh session.
        let mut slot = self.subs[suboram].lock().unwrap();
        if let Some(conn) = slot.take() {
            conn.handle.close();
        }
    }

    fn send_batch(&mut self, suboram: usize, epoch: u64, generation: u64, batch: &[Request]) {
        let mut slot = self.subs[suboram].lock().unwrap();
        let Some(conn) = slot.as_mut() else {
            // Disconnected: drop the batch. SubLinkRestored will trigger a
            // resend once the dialer re-establishes the session.
            return;
        };
        let sealed = match conn.batch_link.seal(batch) {
            Ok(s) => s,
            Err(_) => {
                conn.handle.close();
                *slot = None;
                return;
            }
        };
        let seq = {
            let entry = &mut self.send_seq[suboram];
            if entry.0 != epoch {
                *entry = (epoch, 0);
            }
            let s = entry.1;
            entry.1 += 1;
            s
        };
        let ctx = proto::TraceCtx { epoch, lb: self.lb_index, seq, generation };
        let body = proto::encode_batch_ctx(ctx, &sealed);
        if conn.handle.send_frame(tag::BATCH, &body) {
            self.sub_stats[suboram].sent(body.len());
        } else {
            // Overflow or dead session: the handle condemned it; the dialer
            // redials and the epoch loop replays.
            *slot = None;
        }
    }
}

struct TcpReplySink {
    handle: SessionHandle,
    /// This client session's response-direction link, shared by the
    /// session's sinks so nonce order matches enqueue order.
    resp_link: Arc<Mutex<Link>>,
    stats: Arc<LinkStats>,
    /// The client-chosen request seq, captured at enqueue time so a degraded
    /// epoch can name which request the `CLIENT_FAIL` frame is for.
    seq: u64,
}

impl ReplySink for TcpReplySink {
    fn deliver(self: Box<Self>, resp: Response, epoch: u64) {
        // Seal and enqueue under the link lock: nonce order must equal wire
        // order. The commit epoch rides plaintext ahead of the sealed
        // response — it is already wire-observable on the BATCH frames'
        // trace context, and clients use it as the linearization coordinate
        // of their own committed ops (`epoch / L`, `epoch % L`).
        let mut link = self.resp_link.lock().unwrap();
        let Ok(sealed) = link.seal_responses(&[resp]) else { return };
        let body = proto::encode_epoch_sealed(epoch, &sealed);
        if self.handle.send_frame(tag::CLIENT_RESP, &body) {
            self.stats.sent(body.len());
        }
    }

    fn fail(self: Box<Self>, err: Unavailable) {
        let body = proto::encode_unavailable(self.seq, &err);
        if self.handle.send_frame(tag::CLIENT_FAIL, &body) {
            self.stats.sent(body.len());
        }
    }
}

/// Runs the load-balancer daemon until an admin shutdown.
pub fn run(manifest: &Manifest, index: usize, registry: &StatsRegistry) -> io::Result<()> {
    if index >= manifest.load_balancers.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "loadbalancer index {index} out of range (manifest has {})",
                manifest.load_balancers.len()
            ),
        ));
    }
    let s_total = manifest.suborams.len();
    let mut prg = Prg::from_seed(manifest.seed);
    let shared_key = Key256::random(&mut prg);
    let deploy = proto::deployment_key(manifest.seed);
    // A balancer is stateless, so a (re)started one learns the live layout
    // from the durable side of the cluster: if any subORAM's checkpoint
    // names a committed reshard generation, adopt it; otherwise boot at the
    // manifest's initial active fleet. The manifest fallback is only
    // trustworthy once at least one subORAM has *answered* — after a
    // whole-cluster restart a disk-tier fleet can take far longer than one
    // probe sweep to recover its checkpoints, and silently booting the
    // manifest layout against committed generation-G partitions would stamp
    // every batch with generation 0 (all refused as stale). So the probe
    // retries with backoff until a node answers or the budget runs out; the
    // budget keeps a balancer bootable (and its admin plane reachable —
    // the listener binds after this) even with the fleet down, and the
    // batch plane's generation fence turns a wrong fallback into typed
    // refusals rather than wrong reads.
    let probe_budget = Instant::now() + Duration::from_secs(60);
    let mut probe_pause = Duration::from_millis(250);
    let (initial_generation, num_suborams) = loop {
        let (answered, best) = reshard::probe_layout_once(manifest, Duration::from_secs(2));
        match best {
            Some((generation, active_s)) => break (generation, active_s),
            // A node answered and no node has ever committed a reshard:
            // the manifest's boot layout is authoritative.
            None if answered > 0 => break (0, manifest.initial_active()),
            None => {}
        }
        if Instant::now() >= probe_budget {
            eprintln!(
                "loadbalancer {index}: no subORAM answered the boot layout probe; \
                 falling back to the manifest layout"
            );
            break (0, manifest.initial_active());
        }
        std::thread::sleep(probe_pause);
        probe_pause = (probe_pause * 2).min(Duration::from_secs(5));
    };
    let balancer =
        LoadBalancer::new(&shared_key, num_suborams, manifest.value_len, manifest.lambda)
            .with_threads(manifest.lb_threads as usize);

    events::recorder().set_identity("loadbalancer", index as u64);
    let listener = TcpListener::bind(&manifest.load_balancers[index])?;
    let (events_tx, events_rx) = channel();

    // Client/admin sessions ride the reactor; the acceptor wires each hello
    // to its handler.
    let acceptor = ClientAcceptor {
        lb_index: index,
        deploy: deploy.clone(),
        value_len: manifest.value_len,
        events_tx: events_tx.clone(),
        registry: registry.clone(),
        info: DaemonInfo::new("loadbalancer", index as u64),
        client_counter: 0,
    };
    let cfg = ReactorConfig { workers: net_workers(), ..ReactorConfig::default() };
    let reactor = reactor::spawn(
        listener,
        Box::new({
            let mut acceptor = acceptor;
            move |hello, handle| acceptor.accept(hello, handle)
        }),
        cfg,
    );

    // Slots and dialers cover the whole *provisioned* fleet, not just the
    // active one: a reshard can grow into a warm spare at any epoch
    // boundary, and the connection must already be there when it does. The
    // session-link derivation is keyed on the provisioned count, which both
    // ends read from the same manifest.
    let subs: SubSlots = Arc::new((0..s_total).map(|_| Mutex::new(None)).collect());
    let mut sub_stats = Vec::with_capacity(s_total);

    // Dialer threads: one per subORAM *peer* (a fixed set, not per session),
    // owning connect/backoff and parking while the reactor runs the session.
    for sub in 0..s_total {
        let stats = registry.link(&format!("suboram/{sub}"));
        sub_stats.push(stats.clone());
        let ctx = DialerCtx {
            addr: manifest.suborams[sub].clone(),
            lb_index: index,
            sub,
            num_suborams: s_total,
            deploy: deploy.clone(),
            value_len: manifest.value_len,
            subs: subs.clone(),
            events_tx: events_tx.clone(),
            stats,
            reactor: reactor.clone(),
        };
        std::thread::spawn(move || dialer(ctx));
    }

    // Epoch ticker. Epoch ids are derived from wall-clock time so that
    // (a) they stay monotone across a balancer crash/restart — the subORAM
    // reply caches key on the epoch id, and a restarted balancer must not
    // reuse old ids for new batches — and (b) each balancer ticks ids from
    // its own residue class (`wall * L + index`) without coordination, so
    // ids never collide across balancers. The ticker coalesces: after a
    // stall only the newest id fires. Ids a balancer never ticked are simply
    // absent from its stream — safe, because subORAMs execute each
    // balancer's batch on arrival rather than waiting for every balancer per
    // wall epoch. A backwards clock step produces no tick at all (monotonic
    // clamp) rather than a reused id.
    {
        let events_tx = events_tx.clone();
        let epoch_ms = manifest.epoch_ms.max(1);
        let interval = Duration::from_millis(epoch_ms);
        let num_lbs = manifest.load_balancers.len();
        std::thread::spawn(move || {
            let mut ticker = EpochTicker::new(epoch_ms, num_lbs, index, unix_millis());
            loop {
                std::thread::sleep(interval);
                if let Some(epoch) = ticker.next(unix_millis()) {
                    if events_tx.send(LbEvent::Tick(epoch)).is_err() {
                        return;
                    }
                }
            }
        });
    }

    let mut transport = TcpLbTransport {
        events: events_rx,
        subs,
        sub_stats,
        lb_index: index as u64,
        send_seq: vec![(u64::MAX, 0); s_total],
    };
    let control = ReshardControl {
        rebuild: {
            let shared_key = shared_key.clone();
            let value_len = manifest.value_len;
            let lambda = manifest.lambda;
            let lb_threads = manifest.lb_threads as usize;
            Box::new(move |new_s| {
                LoadBalancer::new(&shared_key, new_s, value_len, lambda).with_threads(lb_threads)
            })
        },
        initial_generation,
    };
    run_load_balancer_with_reshard(
        &mut transport,
        balancer,
        num_suborams,
        manifest.fault_policy(),
        Some(control),
    );
    events::record(Event::new(EventKind::Shutdown));
    events::recorder().dump("shutdown");
    Ok(())
}

/// Milliseconds since the Unix epoch (0 if the clock reads before it).
fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// This balancer's epoch-id source, separated from the clock so the
/// monotonic guard is testable with injected timestamps.
///
/// Balancer `index` of `num_lbs` owns the residue class `index mod num_lbs`
/// of the composite epoch-id namespace: from a wall clock reading `now_ms`
/// it derives the id `(now_ms / epoch_ms) * num_lbs + index`. Ids are
/// clamped monotone — if the wall clock steps backwards (NTP correction, VM
/// migration) the ticker goes silent until the clock passes its previous
/// high-water mark, rather than ever re-issuing an id the subORAM reply
/// caches may already hold. Catch-up is coalesced: a stall yields one tick
/// with the newest id, not a burst of stale ones (ids never ticked are
/// simply absent from this balancer's stream, which no subORAM waits for).
pub struct EpochTicker {
    epoch_ms: u64,
    num_lbs: u64,
    index: u64,
    /// The last wall epoch this ticker issued an id for (high-water mark).
    last_wall: u64,
}

impl EpochTicker {
    /// A ticker for balancer `index` of `num_lbs`, anchored at `now_ms` so
    /// the first tick fires for the *next* wall epoch (a restarted balancer
    /// never re-ticks the wall epoch it died in).
    pub fn new(epoch_ms: u64, num_lbs: usize, index: usize, now_ms: u64) -> EpochTicker {
        let epoch_ms = epoch_ms.max(1);
        EpochTicker {
            epoch_ms,
            num_lbs: num_lbs.max(1) as u64,
            index: index as u64,
            last_wall: now_ms / epoch_ms,
        }
    }

    /// The composite epoch id to tick for a clock reading of `now_ms`, or
    /// `None` if the clock has not advanced past the last issued wall epoch
    /// (including any backwards step — ids never decrease).
    pub fn next(&mut self, now_ms: u64) -> Option<u64> {
        let wall = now_ms / self.epoch_ms;
        if wall <= self.last_wall {
            return None;
        }
        self.last_wall = wall;
        Some(wall * self.num_lbs + self.index)
    }
}

/// Turns accepted hellos (clients, admins) into session handlers.
struct ClientAcceptor {
    lb_index: usize,
    deploy: Key256,
    value_len: usize,
    events_tx: Sender<LbEvent>,
    registry: StatsRegistry,
    info: DaemonInfo,
    client_counter: u64,
}

impl ClientAcceptor {
    fn accept(&mut self, hello: Hello, _handle: &SessionHandle) -> Option<Box<dyn SessionHandler>> {
        match hello.role {
            Role::Client => {
                self.client_counter += 1;
                let stats = self.registry.link(&format!("client/{}", self.client_counter));
                let (req_link, resp_link) =
                    proto::client_session_links(&self.deploy, self.lb_index, hello.session);
                Some(Box::new(ClientSessionHandler {
                    req_link,
                    resp_link: Arc::new(Mutex::new(resp_link)),
                    value_len: self.value_len,
                    events_tx: self.events_tx.clone(),
                    stats,
                }))
            }
            Role::Admin => {
                record_peer_clock_offset("admin", hello.wall_ns);
                let events_tx = self.events_tx.clone();
                let handler = AdminHandler::new(self.registry.clone(), self.info, move || {
                    let _ = events_tx.send(LbEvent::Shutdown);
                })
                .with_reshard(reshard::lb_rpc_handler(self.events_tx.clone()));
                Some(Box::new(handler))
            }
            // Balancers do not dial balancers.
            Role::LoadBalancer => None,
        }
    }
}

/// One accepted client session: opens sealed request batches and fans each
/// request into the epoch loop with a reply sink bound to this session.
struct ClientSessionHandler {
    req_link: Link,
    resp_link: Arc<Mutex<Link>>,
    value_len: usize,
    events_tx: Sender<LbEvent>,
    stats: Arc<LinkStats>,
}

impl SessionHandler for ClientSessionHandler {
    fn on_frame(&mut self, t: u8, body: Vec<u8>, handle: &SessionHandle) -> Control {
        self.stats.received(body.len());
        if t != tag::CLIENT_REQ {
            return Control::Close;
        }
        let sealed = snoopy_crypto::aead::SealedBox { bytes: body };
        let Ok(batch) = self.req_link.open(&sealed, self.value_len) else {
            return Control::Close;
        };
        for req in batch {
            let sink = TcpReplySink {
                handle: handle.clone(),
                resp_link: self.resp_link.clone(),
                stats: self.stats.clone(),
                seq: req.seq,
            };
            if self.events_tx.send(LbEvent::Client(req, Box::new(sink))).is_err() {
                return Control::Close;
            }
        }
        Control::Continue
    }
}

/// Everything one dialer thread needs to own its subORAM connection.
struct DialerCtx {
    addr: String,
    lb_index: usize,
    sub: usize,
    num_suborams: usize,
    deploy: Key256,
    value_len: usize,
    subs: SubSlots,
    events_tx: Sender<LbEvent>,
    stats: Arc<LinkStats>,
    reactor: ReactorHandle,
}

/// Connects to one subORAM forever: dial with capped exponential backoff,
/// hello, register the session with the reactor, then park until the
/// session dies.
fn dialer(ctx: DialerCtx) {
    let DialerCtx {
        addr,
        lb_index,
        sub,
        num_suborams,
        deploy,
        value_len,
        subs,
        events_tx,
        stats,
        reactor,
    } = ctx;
    let mut established_before = false;
    loop {
        // Dial under the dialer policy: capped exponential backoff with
        // deterministic jitter, retrying forever (the balancer cannot make
        // progress without this link). The dial span covers
        // connect-through-hello: connection establishment against a public
        // address is wire-observable timing.
        let dial_span = trace::span("dial");
        let policy = RetryPolicy::dialer_default().jitter_seed(sub as u64);
        let Ok(mut stream) = policy.run(|attempt| {
            if attempt > 0 {
                stats.retried();
            }
            TcpStream::connect(&addr)
        }) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let hello = Hello::new(Role::LoadBalancer, lb_index as u64);
        // The hello goes out while the stream is still blocking; the reactor
        // flips it nonblocking at registration.
        if write_frame(&mut stream, tag::HELLO, &hello.encode()).is_err() {
            continue;
        }
        metrics::stage_histogram("dial").observe(Public::timing(dial_span.finish()));
        let (batch_link, resp_link) =
            proto::suboram_session_links(&deploy, lb_index, sub, num_suborams, hello.session);

        let (closed_tx, closed_rx) = channel();
        let handler = SubDialHandler {
            sub,
            resp_link,
            value_len,
            events_tx: events_tx.clone(),
            stats: stats.clone(),
            closed_tx,
        };
        let handle = reactor.register(stream, Box::new(handler));
        if handle.is_closed() {
            // Reactor gone: daemon is shutting down.
            return;
        }
        *subs[sub].lock().unwrap() = Some(SubSession { handle, batch_link });
        if established_before {
            stats.reconnected();
        }
        established_before = true;
        if events_tx.send(LbEvent::SubLinkRestored { suboram: sub }).is_err() {
            return; // balancer loop gone: daemon is shutting down
        }

        // Park until the reactor reports the session closed, then clear the
        // slot (if a send path has not already) and redial.
        if closed_rx.recv().is_err() {
            return;
        }
        *subs[sub].lock().unwrap() = None;
    }
}

/// The dialer-established subORAM session, as the reactor drives it: opens
/// sealed response batches and typed refusals, feeding the epoch loop.
struct SubDialHandler {
    sub: usize,
    resp_link: Link,
    value_len: usize,
    events_tx: Sender<LbEvent>,
    stats: Arc<LinkStats>,
    closed_tx: Sender<()>,
}

impl SessionHandler for SubDialHandler {
    fn on_frame(&mut self, t: u8, body: Vec<u8>, _handle: &SessionHandle) -> Control {
        self.stats.received(body.len());
        if t == tag::RESP_ERR {
            // Typed refusal: plaintext epoch id. Forward it so the epoch
            // loop can degrade immediately instead of replaying a batch the
            // subORAM will deterministically refuse again.
            let Ok(bytes) = <[u8; 8]>::try_from(&body[..]) else { return Control::Close };
            let epoch = u64::from_le_bytes(bytes);
            if self.events_tx.send(LbEvent::SubFailed { suboram: self.sub, epoch }).is_err() {
                return Control::Close;
            }
            return Control::Continue;
        }
        if t != tag::RESP_BATCH {
            return Control::Close;
        }
        let Some((epoch, sealed)) = proto::decode_epoch_sealed(&body) else {
            return Control::Close;
        };
        let Ok(batch) = self.resp_link.open(&sealed, self.value_len) else {
            return Control::Close;
        };
        if self.events_tx.send(LbEvent::SubResponse { suboram: self.sub, epoch, batch }).is_err() {
            return Control::Close;
        }
        Control::Continue
    }

    fn on_close(&mut self) {
        let _ = self.closed_tx.send(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_ids_come_from_this_balancers_residue_class() {
        // Balancer 1 of 3, epoch_ms = 10, anchored at t = 0.
        let mut t = EpochTicker::new(10, 3, 1, 0);
        #[allow(clippy::identity_op)]
        let first = 1 * 3 + 1; // wall_epoch 1, times k=3 balancers, plus index 1
        assert_eq!(t.next(10), Some(first));
        assert_eq!(t.next(20), Some(2 * 3 + 1));
        assert_eq!(t.next(30), Some(3 * 3 + 1));
    }

    #[test]
    fn backwards_clock_step_never_decreases_epoch_ids() {
        let mut t = EpochTicker::new(10, 2, 0, 100);
        let before = t.next(110).expect("clock advanced");
        // The wall clock steps back 40ms (NTP correction): no tick at all —
        // re-issuing an id would collide with reply-cache entries.
        assert_eq!(t.next(70), None);
        assert_eq!(t.next(90), None);
        // Replaying the exact pre-step reading is also refused.
        assert_eq!(t.next(110), None);
        // Once the clock passes the high-water mark, ids resume above it.
        let after = t.next(120).expect("clock passed the high-water mark");
        assert!(after > before, "ids must be strictly increasing, got {before} then {after}");
    }

    #[test]
    fn stalls_coalesce_to_the_newest_id() {
        let mut t = EpochTicker::new(10, 2, 1, 0);
        assert_eq!(t.next(10), Some(3));
        // A 50ms scheduler stall: one tick with the newest id, not a burst.
        assert_eq!(t.next(60), Some(6 * 2 + 1));
        assert_eq!(t.next(60), None, "same reading ticks at most once");
    }

    #[test]
    fn anchor_skips_the_wall_epoch_the_ticker_started_in() {
        // A balancer restarting at t = 57 (wall epoch 5) must not re-tick 5.
        let mut t = EpochTicker::new(10, 1, 0, 57);
        assert_eq!(t.next(59), None);
        assert_eq!(t.next(61), Some(6));
    }
}
