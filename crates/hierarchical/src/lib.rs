//! Square-root ORAM (Goldreich & Ostrovsky — the root of the *hierarchical*
//! ORAM family the paper contrasts with tree ORAMs in §1/§10; SSS-ORAM and
//! ObliviStore, the paper's [91]/[92], are descendants).
//!
//! Layout: the `n` real blocks plus `√n` dummies live in untrusted storage
//! under a secret pseudorandom permutation; the enclave keeps a `√n`-slot
//! *shelter* and the position map. Per access:
//!
//! 1. obliviously scan the shelter for the block;
//! 2. fetch **one** storage slot — the block's permuted position if it was
//!    absent, the next unused dummy if present. The fetched index is
//!    *revealed*, and that is the construction's security argument: within
//!    an epoch every revealed index is distinct and, under a fresh random
//!    permutation, uniform without replacement — independent of the access
//!    sequence;
//! 3. obliviously insert the (updated) block into the shelter.
//!
//! After `√n` accesses the epoch ends: shelter contents fold back and
//! everything is **obliviously reshuffled** under a fresh permutation
//! ([`snoopy_obliv::shuffle::oshuffle`]), and the position map is rebuilt
//! with an oblivious sort. Amortized cost `O(√n · polylog)` per access —
//! asymptotically worse than tree ORAMs, which is exactly why the paper's
//! lineage moved on; having it in-tree grounds that comparison
//! (`cargo bench -p snoopy-bench` includes it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snoopy_crypto::rng::RngCore;
use snoopy_crypto::Prg;
use snoopy_obliv::ct::{ct_eq_u64, ct_lt_u64, Choice, Cmov};
use snoopy_obliv::impl_cmov_struct;
use snoopy_obliv::shuffle::oshuffle;
use snoopy_obliv::sort::osort_by;

/// An ORAM operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read a block.
    Read,
    /// Write a block.
    Write,
}

/// Address marking an empty shelter slot.
const EMPTY: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct Block {
    /// Real addresses are `< n`; dummies are `n + k`.
    addr: u64,
    data: Vec<u8>,
}

impl_cmov_struct!(Block { addr, data });

/// Reshuffle work item: a block plus a freshness tag (shelter copies win).
#[derive(Clone, Debug)]
struct Tagged {
    tag: u64,
    block: Block,
}

impl_cmov_struct!(Tagged { tag, block });

/// The square-root ORAM.
pub struct SqrtOram {
    /// Shuffled storage: `n` reals + `sqrt_n` dummies.
    store: Vec<Block>,
    /// Position map: `posmap[addr]` = current index in `store` (secret
    /// values; read with full oblivious scans).
    posmap: Vec<u64>,
    /// Fixed-capacity shelter, scanned obliviously.
    shelter: Vec<Block>,
    n: u64,
    sqrt_n: u64,
    accesses_this_epoch: u64,
    dummies_used: u64,
    block_len: usize,
    prg: Prg,
    /// Reshuffles performed (cost accounting).
    pub reshuffles: u64,
    /// Storage slots fetched (exactly one per access).
    pub slot_fetches: u64,
}

impl SqrtOram {
    /// Creates a zero-initialized ORAM for `capacity` blocks.
    pub fn new(capacity: u64, block_len: usize, seed: u64) -> SqrtOram {
        assert!(capacity >= 1);
        let sqrt_n = (capacity as f64).sqrt().ceil() as u64;
        let mut store: Vec<Block> =
            (0..capacity).map(|addr| Block { addr, data: vec![0u8; block_len] }).collect();
        for k in 0..sqrt_n {
            store.push(Block { addr: capacity + k, data: vec![0u8; block_len] });
        }
        let mut oram = SqrtOram {
            store,
            posmap: vec![0; (capacity + sqrt_n) as usize],
            shelter: (0..sqrt_n)
                .map(|_| Block { addr: EMPTY, data: vec![0u8; block_len] })
                .collect(),
            n: capacity,
            sqrt_n,
            accesses_this_epoch: 0,
            dummies_used: 0,
            block_len,
            prg: Prg::from_seed(seed),
            reshuffles: 0,
            slot_fetches: 0,
        };
        oram.reshuffle();
        oram.reshuffles = 0; // initial shuffle is setup, not an epoch cost
        oram
    }

    /// Number of addressable blocks.
    pub fn capacity(&self) -> u64 {
        self.n
    }

    /// Epoch length (accesses between reshuffles).
    pub fn epoch_len(&self) -> u64 {
        self.sqrt_n
    }

    /// Obliviously reads `posmap[addr]` (full scan).
    fn oget_pos(&self, addr: u64) -> u64 {
        let mut out = 0u64;
        for (i, &p) in self.posmap.iter().enumerate() {
            let hit = ct_eq_u64(i as u64, addr);
            out.cmov(&p, hit);
        }
        out
    }

    /// One access. Returns the previous value of the block.
    pub fn access(&mut self, op: Op, addr: u64, new_data: Option<&[u8]>) -> Vec<u8> {
        assert!(addr < self.n, "address out of range");

        // 1. Oblivious shelter scan: extract the block if present.
        let mut in_shelter = Choice::FALSE;
        let mut held = vec![0u8; self.block_len];
        for slot in self.shelter.iter_mut() {
            let hit = ct_eq_u64(slot.addr, addr);
            held.cmov(&slot.data, hit);
            let empty_addr = EMPTY;
            slot.addr.cmov(&empty_addr, hit); // remove from shelter (re-inserted below)
            in_shelter = in_shelter.or(hit);
        }

        // 2. Fetch exactly one storage slot. The index is revealed by design;
        //    its VALUE is computed branch-free from secret state.
        let real_idx = self.oget_pos(addr);
        let dummy_addr = self.n + self.dummies_used;
        let dummy_idx = self.oget_pos(dummy_addr);
        self.dummies_used += 1; // consumed either way (count is public: 1/access)
        let mut fetch_idx = real_idx;
        fetch_idx.cmov(&dummy_idx, in_shelter);
        self.slot_fetches += 1;
        let fetched = self.store[fetch_idx as usize].clone();

        // The fetched block's data matters only when it really was our block.
        let fetched_is_target = ct_eq_u64(fetched.addr, addr);
        let mut current = held;
        current.cmov(&fetched.data, fetched_is_target.and(in_shelter.not()));
        // Mark the fetched slot consumed so a reshuffle rebuild can't double
        // count (data stays; addr flips to a tombstone only for real hits —
        // value-level, branch-free).
        let tomb = EMPTY;
        self.store[fetch_idx as usize].addr.cmov(&tomb, fetched_is_target.and(in_shelter.not()));

        let old = current.clone();
        let is_write = Choice::from_bool(matches!(op, Op::Write));
        let mut padded = vec![0u8; self.block_len];
        if let Some(d) = new_data {
            let m = d.len().min(self.block_len);
            padded[..m].copy_from_slice(&d[..m]);
        }
        current.cmov(&padded, is_write);

        // 3. Oblivious shelter insert.
        let block = Block { addr, data: current };
        let mut written = Choice::FALSE;
        for slot in self.shelter.iter_mut() {
            let free = ct_eq_u64(slot.addr, EMPTY);
            let take = free.and(written.not());
            slot.cmov(&block, take);
            written = written.or(take);
        }
        assert!(written.declassify(), "shelter overflow: reshuffle cadence bug");

        self.accesses_this_epoch += 1;
        if self.accesses_this_epoch == self.sqrt_n {
            self.reshuffle();
        }
        old
    }

    /// Epoch end: fold the shelter back, re-dummy, oblivious shuffle, rebuild
    /// the position map with an oblivious sort.
    fn reshuffle(&mut self) {
        self.reshuffles += 1;
        // Fold shelter blocks over their stale storage copies: concatenate
        // and keep the *latest* copy per address via sort + adjacent fold.
        // Shelter entries are appended after storage, so within an address
        // group the shelter copy has the larger tag.
        let mut merged: Vec<Tagged> = Vec::with_capacity(self.store.len() + self.shelter.len());
        for b in self.store.drain(..) {
            merged.push(Tagged { tag: 0, block: b });
        }
        for s in self.shelter.iter_mut() {
            let b = Block {
                addr: s.addr,
                data: std::mem::replace(&mut s.data, vec![0u8; self.block_len]),
            };
            s.addr = EMPTY;
            merged.push(Tagged { tag: 1, block: b });
        }
        // Sort by (addr, freshness): fresh copies come last in each group.
        osort_by(&mut merged, &|a: &Tagged, b: &Tagged| {
            let addr_gt = ct_lt_u64(b.block.addr, a.block.addr);
            let addr_eq = ct_eq_u64(a.block.addr, b.block.addr);
            let tag_gt = ct_lt_u64(b.tag, a.tag);
            addr_gt.or(addr_eq.and(tag_gt))
        });
        // Backward scan: propagate the freshest copy onto the first entry of
        // each group; afterwards entry i is kept iff it starts an address
        // group and is not an EMPTY tombstone.
        for i in (0..merged.len().saturating_sub(1)).rev() {
            let (left, right) = merged.split_at_mut(i + 1);
            let same = ct_eq_u64(left[i].block.addr, right[0].block.addr);
            let fresher = ct_lt_u64(left[i].tag, right[0].tag);
            let take = same.and(fresher);
            let src = right[0].block.data.clone();
            left[i].block.data.cmov(&src, take);
        }
        let mut keep: Vec<Choice> = Vec::with_capacity(merged.len());
        let mut prev = EMPTY;
        for t in merged.iter() {
            let first_of_group = ct_eq_u64(t.block.addr, prev).not();
            let not_tomb = ct_eq_u64(t.block.addr, EMPTY).not();
            keep.push(first_of_group.and(not_tomb));
            prev = t.block.addr;
        }
        let mut blocks: Vec<Block> = merged.into_iter().map(|t| t.block).collect();
        snoopy_obliv::compact::ocompact(&mut blocks, &mut keep);
        let total = (self.n + self.sqrt_n) as usize;
        blocks.truncate(total);
        // Restore any consumed dummies/tombstoned slots: pad back to full
        // population if tombstones removed entries (counted obliviously
        // above; dummies consumed are re-created with fresh zero data).
        let mut have: Vec<bool> = vec![false; total];
        for b in &blocks {
            if (b.addr as usize) < total {
                have[b.addr as usize] = true;
            }
        }
        for (a, present) in have.iter().enumerate() {
            if !present {
                blocks.push(Block { addr: a as u64, data: vec![0u8; self.block_len] });
            }
        }
        blocks.truncate(total);

        // Fresh oblivious shuffle.
        let prg = &mut self.prg;
        let mut rng = || prg.next_u64();
        oshuffle(&mut blocks, &mut rng);

        // Rebuild the position map with an oblivious sort of (addr, index).
        let mut pairs: Vec<[u64; 2]> =
            blocks.iter().enumerate().map(|(i, b)| [b.addr, i as u64]).collect();
        osort_by(&mut pairs, &|a: &[u64; 2], b: &[u64; 2]| ct_lt_u64(b[0], a[0]));
        for (a, p) in pairs.iter().enumerate() {
            debug_assert_eq!(p[0], a as u64, "addresses must be exactly 0..n+sqrt_n");
            self.posmap[a] = p[1];
        }

        self.store = blocks;
        self.accesses_this_epoch = 0;
        self.dummies_used = 0;
    }

    /// Shelter occupancy (test helper; deliberate declassification).
    pub fn shelter_occupancy(&self) -> usize {
        self.shelter.iter().filter(|s| s.addr != EMPTY).count()
    }
}

impl SqrtOram {
    /// Test-only: performs an access and returns the revealed storage index.
    #[doc(hidden)]
    pub fn access_traced(&mut self, op: Op, addr: u64) -> u64 {
        let fetches_before = self.slot_fetches;
        let idx_probe = {
            // Recompute the same decision the access will make.
            let mut in_shelter = Choice::FALSE;
            for slot in self.shelter.iter() {
                in_shelter = in_shelter.or(ct_eq_u64(slot.addr, addr));
            }
            let real_idx = self.oget_pos(addr);
            let dummy_idx = self.oget_pos(self.n + self.dummies_used);
            let mut idx = real_idx;
            idx.cmov(&dummy_idx, in_shelter);
            idx
        };
        self.access(op, addr, None);
        debug_assert_eq!(self.slot_fetches, fetches_before + 1);
        idx_probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn read_after_write() {
        let mut oram = SqrtOram::new(16, 8, 1);
        oram.access(Op::Write, 3, Some(&[7u8; 8]));
        assert_eq!(oram.access(Op::Read, 3, None), vec![7u8; 8]);
        assert_eq!(oram.access(Op::Read, 4, None), vec![0u8; 8]);
    }

    #[test]
    fn survives_many_epochs() {
        let mut oram = SqrtOram::new(25, 8, 2);
        // 25 blocks => sqrt = 5 => reshuffle every 5 accesses.
        for round in 0..20u8 {
            oram.access(Op::Write, 7, Some(&[round; 8]));
            assert_eq!(oram.access(Op::Read, 7, None), vec![round; 8], "round {round}");
        }
        assert!(oram.reshuffles >= 7, "reshuffles {}", oram.reshuffles);
    }

    #[test]
    fn random_workload_matches_model() {
        use snoopy_crypto::rng::Rng as _;
        let mut rng = snoopy_crypto::Prg::from_seed(3);
        let n = 49u64;
        let mut oram = SqrtOram::new(n, 8, 4);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for _ in 0..800 {
            let addr = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                let val = vec![rng.gen::<u8>(); 8];
                oram.access(Op::Write, addr, Some(&val));
                model.insert(addr, val);
            } else {
                let got = oram.access(Op::Read, addr, None);
                let want = model.get(&addr).cloned().unwrap_or_else(|| vec![0u8; 8]);
                assert_eq!(got, want, "addr {addr}");
            }
        }
    }

    #[test]
    fn hammering_one_address_works() {
        // The motivating case: repeated access to one block must keep
        // consuming dummies and stay correct across reshuffles.
        let mut oram = SqrtOram::new(36, 8, 5);
        oram.access(Op::Write, 9, Some(&[1u8; 8]));
        for _ in 0..30 {
            assert_eq!(oram.access(Op::Read, 9, None), vec![1u8; 8]);
        }
    }

    #[test]
    fn one_slot_fetch_per_access() {
        let mut oram = SqrtOram::new(64, 8, 6);
        for i in 0..40u64 {
            oram.access(Op::Read, i % 64, None);
        }
        assert_eq!(oram.slot_fetches, 40);
    }

    #[test]
    fn revealed_indices_distinct_within_epoch() {
        // The security invariant: within one epoch no storage index repeats,
        // even when every access targets the same address.
        let mut oram = SqrtOram::new(100, 8, 8);
        let epoch = oram.epoch_len();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..epoch {
            let idx = oram.access_traced(Op::Read, 5);
            assert!(seen.insert(idx), "index {idx} repeated within an epoch");
        }
    }

    #[test]
    fn shelter_never_overflows_before_reshuffle() {
        let mut oram = SqrtOram::new(81, 8, 9);
        for i in 0..(oram.epoch_len() * 4) {
            oram.access(Op::Write, i % 81, Some(&[1u8; 8]));
            assert!(oram.shelter_occupancy() <= oram.epoch_len() as usize);
        }
    }
}
