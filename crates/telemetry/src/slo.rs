//! SLO burn computation over scraped Prometheus expositions.
//!
//! `snoopy-mon` scrapes every daemon's metrics RPC and needs to turn the
//! text expositions into a verdict: is the cluster inside its service-level
//! objectives? [`parse_prometheus`] reads the exposition format the
//! in-tree registry renders (and any Prometheus-compatible exporter
//! produces), [`SloBurn`] condenses one scrape into the burn signals the
//! paper's operational story cares about (stage p99, degraded-epoch rate,
//! replay waves, reply-cache evictions, storage buffer stalls), and
//! [`SloPolicy::evaluate`] gates them — the CI hook behind
//! `scripts/verify.sh`'s observability suite.
//!
//! **Leakage**: SLO inputs are aggregates of already-exported public
//! metrics, and the typed constructor only accepts [`Public`] witnesses —
//! a [`crate::public::Secret`] cannot become an SLO input:
//!
//! ```compile_fail
//! use snoopy_telemetry::slo::SloBurn;
//! use snoopy_telemetry::public::{Public, Secret};
//!
//! let secret_rate: Secret<f64> = Secret::new(0.9);
//! // Every SloBurn input is a Public<f64>; a Secret is not accepted.
//! let burn = SloBurn::new(
//!     Public::wire_observable(10.0),
//!     Public::timing(0.010),
//!     secret_rate,
//!     Public::wire_observable(0.0),
//!     Public::wire_observable(0.0),
//!     Public::wire_observable(0.0),
//! );
//! ```

use crate::public::Public;
use std::collections::BTreeMap;

/// One parsed sample: label set (sorted) and value.
pub type Sample = (Vec<(String, String)>, f64);

/// A parsed Prometheus text exposition: series name → samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scrape {
    /// Samples grouped by metric name.
    pub series: BTreeMap<String, Vec<Sample>>,
}

impl Scrape {
    /// Sum of every sample of `name` (0 if absent) — the usual reading for
    /// counters that may appear under several labels.
    pub fn sum(&self, name: &str) -> f64 {
        self.series.get(name).map(|v| v.iter().map(|(_, x)| x).sum()).unwrap_or(0.0)
    }

    /// The value of the sample of `name` whose labels include
    /// `key="value"`.
    pub fn value_labeled(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.series.get(name)?.iter().find_map(|(labels, x)| {
            labels.iter().any(|(k, v)| k == key && v == value).then_some(*x)
        })
    }

    /// Estimates quantile `q` of the histogram `name` restricted to samples
    /// carrying `key="value"`, from its cumulative `_bucket` series (`le`
    /// upper bounds in seconds, the registry's rendering). Returns the `le`
    /// bound of the bucket holding the `ceil(q·count)`-th sample.
    pub fn histogram_quantile(&self, name: &str, key: &str, value: &str, q: f64) -> Option<f64> {
        let buckets = self.series.get(&format!("{name}_bucket"))?;
        let mut points: Vec<(f64, f64)> = Vec::new();
        let mut total = 0.0f64;
        for (labels, x) in buckets {
            if !labels.iter().any(|(k, v)| k == key && v == value) {
                continue;
            }
            let le = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.as_str())?;
            if le == "+Inf" {
                total = *x;
            } else {
                points.push((le.parse::<f64>().ok()?, *x));
            }
        }
        if total <= 0.0 {
            return None;
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
        for (le, cum) in &points {
            if *cum >= rank {
                return Some(*le);
            }
        }
        // Rank falls in the +Inf bucket: report the largest finite bound.
        points.last().map(|(le, _)| *le)
    }
}

/// Parses a Prometheus text exposition (`# HELP`/`# TYPE` comments are
/// skipped; samples are `name{k="v",...} value`).
pub fn parse_prometheus(text: &str) -> Result<Scrape, String> {
    let mut out = Scrape::default();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, rest) = match line.find('{') {
            Some(i) => {
                let close = line.rfind('}').ok_or(format!("line {ln}: unclosed labels"))?;
                (&line[..i], (&line[i + 1..close], &line[close + 1..]))
            }
            None => {
                let mut it = line.splitn(2, char::is_whitespace);
                let name = it.next().unwrap();
                (name, ("", it.next().unwrap_or("")))
            }
        };
        let (labels_part, value_part) = rest;
        let value: f64 = value_part
            .split_whitespace()
            .next()
            .ok_or(format!("line {ln}: missing value"))?
            .parse()
            .map_err(|_| format!("line {ln}: bad value"))?;
        let mut labels = Vec::new();
        let mut src = labels_part;
        while !src.is_empty() {
            let eq = src.find('=').ok_or(format!("line {ln}: bad label pair"))?;
            let key = src[..eq].trim().to_string();
            let after = &src[eq + 1..];
            let after = after.strip_prefix('"').ok_or(format!("line {ln}: unquoted label"))?;
            // Labels the in-tree registry emits never contain escaped
            // quotes mid-value except via escape_label; honor backslash
            // escapes while scanning for the closing quote.
            let mut val = String::new();
            let mut chars = after.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        if let Some((_, n)) = chars.next() {
                            val.push(match n {
                                'n' => '\n',
                                c => c,
                            });
                        }
                    }
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => val.push(c),
                }
            }
            let end = end.ok_or(format!("line {ln}: unterminated label value"))?;
            labels.push((key, val));
            src = after[end + 1..].trim_start_matches(',').trim_start();
        }
        out.series.entry(name_part.to_string()).or_default().push((labels, value));
    }
    Ok(out)
}

/// The burn signals one scrape condenses to. Raw counts are kept so
/// aggregation across daemons stays exact; ratios are computed at
/// evaluation time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloBurn {
    /// Epochs executed.
    pub epochs: f64,
    /// Worst observed stage p99, seconds (the policy names the stage).
    pub p99_seconds: f64,
    /// Degraded epochs.
    pub degraded_epochs: f64,
    /// Replay waves.
    pub replay_waves: f64,
    /// Reply-cache evicted replays.
    pub evicted_replays: f64,
    /// Storage write-behind buffer stalls.
    pub storage_stalls: f64,
}

impl SloBurn {
    /// Builds a burn record from public inputs — the only constructor, so
    /// the SLO plane inherits the metrics plane's leakage gate (see the
    /// module doc's `compile_fail` proof).
    pub fn new(
        epochs: Public<f64>,
        p99_seconds: Public<f64>,
        degraded_epochs: Public<f64>,
        replay_waves: Public<f64>,
        evicted_replays: Public<f64>,
        storage_stalls: Public<f64>,
    ) -> SloBurn {
        SloBurn {
            epochs: epochs.into_value(),
            p99_seconds: p99_seconds.into_value(),
            degraded_epochs: degraded_epochs.into_value(),
            replay_waves: replay_waves.into_value(),
            evicted_replays: evicted_replays.into_value(),
            storage_stalls: storage_stalls.into_value(),
        }
    }

    /// Condenses one scrape. `p99_stage` names the
    /// `snoopy_stage_seconds{stage=...}` histogram to take p99 from (0 when
    /// the stage never ran). Every input is read off an exported
    /// exposition — wire-observable by construction.
    pub fn from_scrape(scrape: &Scrape, p99_stage: &str) -> SloBurn {
        let p99 = scrape
            .histogram_quantile("snoopy_stage_seconds", "stage", p99_stage, 0.99)
            .unwrap_or(0.0);
        SloBurn::new(
            Public::wire_observable(scrape.sum("snoopy_epochs_total")),
            Public::wire_observable(p99),
            Public::wire_observable(scrape.sum("snoopy_degraded_epochs_total")),
            Public::wire_observable(scrape.sum("snoopy_replays_total")),
            Public::wire_observable(scrape.sum("snoopy_evicted_replays_total")),
            Public::wire_observable(scrape.sum("snoopy_store_buffer_stalls_total")),
        )
    }

    /// Aggregates burns from several daemons: counts add, p99 takes the
    /// worst daemon.
    pub fn aggregate(burns: &[SloBurn]) -> SloBurn {
        let mut out = SloBurn::default();
        for b in burns {
            out.epochs += b.epochs;
            out.p99_seconds = out.p99_seconds.max(b.p99_seconds);
            out.degraded_epochs += b.degraded_epochs;
            out.replay_waves += b.replay_waves;
            out.evicted_replays += b.evicted_replays;
            out.storage_stalls += b.storage_stalls;
        }
        out
    }

    /// Degraded epochs per epoch (0 when no epochs ran).
    pub fn degraded_ratio(&self) -> f64 {
        if self.epochs > 0.0 {
            self.degraded_epochs / self.epochs
        } else {
            0.0
        }
    }

    /// Replay waves per epoch (0 when no epochs ran).
    pub fn replays_per_epoch(&self) -> f64 {
        if self.epochs > 0.0 {
            self.replay_waves / self.epochs
        } else {
            0.0
        }
    }
}

/// SLO thresholds. A burn passes iff every signal is at or under its
/// ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct SloPolicy {
    /// Stage whose p99 is gated (a `snoopy_stage_seconds` label).
    pub p99_stage: String,
    /// Ceiling for that stage's p99, seconds.
    pub max_p99_seconds: f64,
    /// Ceiling for degraded epochs per epoch.
    pub max_degraded_ratio: f64,
    /// Ceiling for replay waves per epoch.
    pub max_replays_per_epoch: f64,
    /// Ceiling for reply-cache evicted replays (absolute).
    pub max_evicted_replays: f64,
    /// Ceiling for storage buffer stalls (absolute).
    pub max_storage_stalls: f64,
}

impl SloPolicy {
    /// Deliberately loose CI floors: gate wedges and systematic failure,
    /// not machine speed (the same philosophy as the stress suite).
    pub fn conservative() -> SloPolicy {
        SloPolicy {
            p99_stage: "suboram_scan".to_string(),
            max_p99_seconds: 5.0,
            max_degraded_ratio: 0.9,
            max_replays_per_epoch: 16.0,
            max_evicted_replays: 1e9,
            max_storage_stalls: 1e9,
        }
    }

    /// Evaluates a burn; the report lists one violation line per breached
    /// ceiling.
    pub fn evaluate(&self, burn: &SloBurn) -> SloReport {
        let mut violations = Vec::new();
        if burn.p99_seconds > self.max_p99_seconds {
            violations.push(format!(
                "stage {} p99 {:.6}s exceeds ceiling {:.6}s",
                self.p99_stage, burn.p99_seconds, self.max_p99_seconds
            ));
        }
        if burn.degraded_ratio() > self.max_degraded_ratio {
            violations.push(format!(
                "degraded-epoch ratio {:.4} exceeds ceiling {:.4} ({} of {} epochs)",
                burn.degraded_ratio(),
                self.max_degraded_ratio,
                burn.degraded_epochs,
                burn.epochs
            ));
        }
        if burn.replays_per_epoch() > self.max_replays_per_epoch {
            violations.push(format!(
                "replay waves/epoch {:.4} exceeds ceiling {:.4}",
                burn.replays_per_epoch(),
                self.max_replays_per_epoch
            ));
        }
        if burn.evicted_replays > self.max_evicted_replays {
            violations.push(format!(
                "evicted replays {} exceed ceiling {}",
                burn.evicted_replays, self.max_evicted_replays
            ));
        }
        if burn.storage_stalls > self.max_storage_stalls {
            violations.push(format!(
                "storage buffer stalls {} exceed ceiling {}",
                burn.storage_stalls, self.max_storage_stalls
            ));
        }
        SloReport { burn: *burn, violations }
    }
}

/// The outcome of gating one burn against a policy.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// The evaluated burn.
    pub burn: SloBurn,
    /// One line per breached ceiling; empty means the gate passes.
    pub violations: Vec<String>,
}

impl SloReport {
    /// Whether the gate passes.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn parses_registry_rendering() {
        let r = MetricsRegistry::new();
        r.counter("snoopy_epochs_total", "epochs").add(Public::wire_observable(10));
        r.counter("snoopy_degraded_epochs_total", "degraded").add(Public::wire_observable(2));
        r.gauge_labeled("snoopy_info", "info", Some(("role", "loadbalancer")))
            .set(Public::config(1.0));
        let h =
            r.histogram_labeled("snoopy_stage_seconds", "stages", Some(("stage", "suboram_scan")));
        for ms in [1u64, 2, 3, 200] {
            h.observe(Public::timing(std::time::Duration::from_millis(ms)));
        }
        let scrape = parse_prometheus(&r.render_prometheus()).unwrap();
        assert_eq!(scrape.sum("snoopy_epochs_total"), 10.0);
        assert_eq!(scrape.sum("snoopy_degraded_epochs_total"), 2.0);
        assert_eq!(scrape.value_labeled("snoopy_info", "role", "loadbalancer"), Some(1.0));
        let p99 = scrape
            .histogram_quantile("snoopy_stage_seconds", "stage", "suboram_scan", 0.99)
            .unwrap();
        assert!((0.18..=0.25).contains(&p99), "p99 {p99}");
        let p50 = scrape
            .histogram_quantile("snoopy_stage_seconds", "stage", "suboram_scan", 0.50)
            .unwrap();
        assert!((0.0015..=0.0035).contains(&p50), "p50 {p50}");
        // Absent stage: no quantile.
        assert_eq!(
            scrape.histogram_quantile("snoopy_stage_seconds", "stage", "lb_match", 0.99),
            None
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_prometheus("snoopy_x{stage=\"a\" 3").is_err());
        assert!(parse_prometheus("snoopy_x not_a_number").is_err());
        assert!(parse_prometheus("").unwrap().series.is_empty());
    }

    #[test]
    fn burn_from_scrape_and_gate() {
        let text = "\
snoopy_epochs_total 100\n\
snoopy_degraded_epochs_total 5\n\
snoopy_replays_total 7\n\
snoopy_evicted_replays_total 0\n\
snoopy_store_buffer_stalls_total 3\n";
        let burn = SloBurn::from_scrape(&parse_prometheus(text).unwrap(), "suboram_scan");
        assert_eq!(burn.epochs, 100.0);
        assert_eq!(burn.degraded_ratio(), 0.05);
        assert_eq!(burn.replays_per_epoch(), 0.07);
        assert_eq!(burn.p99_seconds, 0.0);
        let pass = SloPolicy::conservative().evaluate(&burn);
        assert!(pass.pass(), "violations: {:?}", pass.violations);
        let mut strict = SloPolicy::conservative();
        strict.max_degraded_ratio = 0.01;
        strict.max_replays_per_epoch = 0.01;
        let fail = strict.evaluate(&burn);
        assert_eq!(fail.violations.len(), 2, "{:?}", fail.violations);
        assert!(!fail.pass());
    }

    #[test]
    fn aggregate_sums_counts_takes_worst_p99() {
        let a = SloBurn {
            epochs: 10.0,
            p99_seconds: 0.010,
            degraded_epochs: 1.0,
            replay_waves: 2.0,
            evicted_replays: 0.0,
            storage_stalls: 0.0,
        };
        let b = SloBurn {
            epochs: 20.0,
            p99_seconds: 0.050,
            degraded_epochs: 0.0,
            replay_waves: 0.0,
            evicted_replays: 1.0,
            storage_stalls: 4.0,
        };
        let agg = SloBurn::aggregate(&[a, b]);
        assert_eq!(agg.epochs, 30.0);
        assert_eq!(agg.p99_seconds, 0.050);
        assert_eq!(agg.degraded_epochs, 1.0);
        assert_eq!(agg.evicted_replays, 1.0);
        assert_eq!(agg.storage_stalls, 4.0);
        // Empty-epoch burn: ratios are defined (0), not NaN.
        assert_eq!(SloBurn::default().degraded_ratio(), 0.0);
        assert_eq!(SloBurn::default().replays_per_epoch(), 0.0);
    }
}
