//! The leakage boundary, as a type.
//!
//! Snoopy's security argument (§2.1 of the paper) permits the adversary to
//! learn only *public* quantities: the deployment configuration, the number
//! of requests `R` arriving each epoch (traffic volume is observable on the
//! wire anyway), anything computable from those (`f(R, S)`, batch sizes,
//! padding counts derived as `batch − min(R, batch)`), counts of entries
//! actually sent over links, and the wall-clock timing of *data-independent*
//! code (oblivious code runs in time that depends only on public shapes).
//!
//! Everything else — which requests were duplicates, the post-deduplication
//! dummy count, which object a request touched, key material — is secret and
//! must never reach an exported metric, log line, or trace span.
//!
//! This module makes that boundary a compile-time artifact:
//!
//! * [`Public<T>`] witnesses that a value is public. Its only constructors
//!   are for the provably public provenances above; the export surface
//!   ([`crate::metrics`]) accepts *only* `Public` values.
//! * [`Secret<T>`] wraps a secret-derived value. It deliberately has **no
//!   accessor** returning the inner value and no conversion to `Public`, so
//!   a secret can be carried around and scrubbed but never exported.
//!
//! Trying to export a secret does not compile:
//!
//! ```compile_fail
//! use snoopy_telemetry::public::{Public, Secret};
//!
//! // The post-dedup dummy count would reveal how many requests were
//! // duplicates — Theorem 3's batch sizes are chosen so it never leaks.
//! let post_dedup_dummies: Secret<u64> = Secret::new(3);
//!
//! // There is no way out of a Secret: no getter, no Into, no Deref.
//! let leaked: Public<u64> = Public::config(post_dedup_dummies.into_inner());
//! ```
//!
//! ```compile_fail
//! use snoopy_telemetry::metrics::MetricsRegistry;
//! use snoopy_telemetry::public::Secret;
//!
//! let registry = MetricsRegistry::new();
//! let post_dedup_dummies: Secret<u64> = Secret::new(3);
//! // Counter::add only accepts Public<u64>; a Secret is not one.
//! registry.counter("snoopy_dummies_total", "post-dedup dummies").add(post_dedup_dummies);
//! ```

/// Where a public value's publicness comes from. Recorded on every exported
/// series so `MetricsRegistry::audit` can list, per metric, the argument for
/// why exporting it is safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Provenance {
    /// Deployment configuration: machine counts, object sizes, λ, epoch
    /// length. Chosen before any secret exists.
    Config,
    /// Request volume `R` (or a per-balancer share of it). Arrival counts
    /// are visible to the network adversary by assumption.
    RequestVolume,
    /// Quantities observable on the wire: frames, bytes, reconnects, epoch
    /// boundaries, counts of entries actually sent.
    WireObservable,
    /// Wall-clock timing of data-independent (oblivious) code, whose
    /// duration is a function of public shapes only.
    PublicTiming,
    /// A pure function of other public values.
    Derived,
}

impl Provenance {
    /// Stable label for renderings and audits.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Config => "config",
            Provenance::RequestVolume => "request_volume",
            Provenance::WireObservable => "wire_observable",
            Provenance::PublicTiming => "public_timing",
            Provenance::Derived => "derived",
        }
    }

    pub(crate) fn bit(self) -> u8 {
        match self {
            Provenance::Config => 1,
            Provenance::RequestVolume => 1 << 1,
            Provenance::WireObservable => 1 << 2,
            Provenance::PublicTiming => 1 << 3,
            Provenance::Derived => 1 << 4,
        }
    }

    pub(crate) fn from_mask(mask: u8) -> Vec<Provenance> {
        [
            Provenance::Config,
            Provenance::RequestVolume,
            Provenance::WireObservable,
            Provenance::PublicTiming,
            Provenance::Derived,
        ]
        .into_iter()
        .filter(|p| mask & p.bit() != 0)
        .collect()
    }
}

/// A value that is public under §2.1's leakage definition, together with the
/// reason it is public. The only way into the exported-metrics plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Public<T> {
    value: T,
    provenance: Provenance,
}

impl<T> Public<T> {
    /// Witnesses a deployment-configuration value.
    pub fn config(value: T) -> Public<T> {
        Public { value, provenance: Provenance::Config }
    }

    /// Witnesses a request-volume quantity (`R`, or a function of it the
    /// caller computed before wrapping — prefer [`Public::map`] for that).
    pub fn request_volume(value: T) -> Public<T> {
        Public { value, provenance: Provenance::RequestVolume }
    }

    /// Witnesses a wire-observable quantity: frames, payload bytes,
    /// reconnects, epochs, entries actually sent to a subORAM.
    pub fn wire_observable(value: T) -> Public<T> {
        Public { value, provenance: Provenance::WireObservable }
    }

    /// Witnesses the measured duration of data-independent code. The caller
    /// asserts the timed region is oblivious (its running time depends only
    /// on public shapes); every span in this workspace's instrumented
    /// pipelines is over such a region.
    pub fn timing(value: T) -> Public<T> {
        Public { value, provenance: Provenance::PublicTiming }
    }

    /// Replaces the value while keeping this witness's provenance. For
    /// constants justified by the same argument as the witness itself —
    /// e.g. turning a `Public<()>` "one more frame happened" witness into
    /// the unit increment `1` ([`crate::metrics::Counter::inc`]).
    pub fn carry<U>(self, value: U) -> Public<U> {
        Public { value, provenance: self.provenance }
    }

    /// A pure function of a public value is public.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Public<U> {
        Public { value: f(self.value), provenance: Provenance::Derived }
    }

    /// A pure function of two public values is public.
    pub fn zip_with<U, V>(self, other: Public<U>, f: impl FnOnce(T, U) -> V) -> Public<V> {
        Public { value: f(self.value, other.value), provenance: Provenance::Derived }
    }

    /// The witnessed value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consumes the witness.
    pub fn into_value(self) -> T {
        self.value
    }

    /// Why this value is public.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }
}

/// A secret-derived value. Exists so code can *hold* secrets near the
/// telemetry layer (e.g. to count them into a [`Secret`] accumulator for an
/// in-enclave debugging assertion) without any path to exporting them: there
/// is no accessor, no `Deref`, no conversion to [`Public`], and the `Debug`
/// impl redacts.
pub struct Secret<T> {
    value: T,
}

impl<T> Secret<T> {
    /// Wraps a secret.
    pub fn new(value: T) -> Secret<T> {
        Secret { value }
    }

    /// Secrets may be transformed — the result is still secret.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Secret<U> {
        Secret { value: f(self.value) }
    }

    /// Folds another secret in; the combination is still secret.
    pub fn zip_with<U, V>(self, other: Secret<U>, f: impl FnOnce(T, U) -> V) -> Secret<V> {
        Secret { value: f(self.value, other.value) }
    }

    /// Destroys the secret without revealing it.
    pub fn scrub(self) {
        drop(self.value);
    }
}

impl<T> std::fmt::Debug for Secret<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Secret(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_tracks_through_derivation() {
        let r = Public::request_volume(100usize);
        let s = Public::config(4usize);
        let per = r.zip_with(s, |r, s| r / s);
        assert_eq!(*per.value(), 25);
        assert_eq!(per.provenance(), Provenance::Derived);
        assert_eq!(Public::timing(1u64).provenance(), Provenance::PublicTiming);
    }

    #[test]
    fn provenance_mask_roundtrip() {
        let mask = Provenance::Config.bit() | Provenance::PublicTiming.bit();
        assert_eq!(Provenance::from_mask(mask), vec![Provenance::Config, Provenance::PublicTiming]);
    }

    #[test]
    fn secret_debug_redacts() {
        let s = Secret::new(1234u64).map(|v| v * 2);
        assert_eq!(format!("{s:?}"), "Secret(<redacted>)");
        s.scrub();
    }
}
