//! A minimal JSON parser and a Chrome `trace_event` validator.
//!
//! The workspace builds with zero external dependencies, so the tests that
//! assert "a trace dump loads as valid Chrome trace_event JSON" need their
//! own reader. [`Json::parse`] handles the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) — enough to load
//! anything [`crate::trace::chrome_trace_json`] emits and plenty for config
//! fixtures. [`parse_chrome_trace`] then checks the trace-event shape and
//! returns the events for structural assertions (nesting, ordering).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap: deterministic iteration for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our dumps;
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

/// One validated trace event (`ph == "X"`).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Span name.
    pub name: String,
    /// Thread id.
    pub tid: u64,
    /// Start, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
}

impl ChromeEvent {
    /// Whether `other` lies strictly within this event's interval (same
    /// thread) — Chrome's nesting criterion for complete events.
    pub fn contains(&self, other: &ChromeEvent) -> bool {
        self.tid == other.tid && self.ts <= other.ts && self.ts + self.dur >= other.ts + other.dur
    }
}

/// Parses and validates a Chrome `trace_event` "JSON object format" dump:
/// a top-level object with a `traceEvents` array whose entries are complete
/// (`ph: "X"`) events carrying `name`/`tid`/`ts`/`dur`. Returns the events
/// in file order.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing ph"))?;
        if ph != "X" {
            return Err(format!("event {i}: unsupported phase '{ph}'"));
        }
        let name =
            ev.get("name").and_then(Json::as_str).ok_or(format!("event {i}: missing name"))?;
        let tid = ev.get("tid").and_then(Json::as_f64).ok_or(format!("event {i}: missing tid"))?;
        let ts = ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing ts"))?;
        let dur = ev.get("dur").and_then(Json::as_f64).ok_or(format!("event {i}: missing dur"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur"));
        }
        out.push(ChromeEvent { name: name.to_string(), tid: tid as u64, ts, dur });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{chrome_trace_json, SpanRecord};
    use std::borrow::Cow;

    #[test]
    fn json_roundtrip_basics() {
        let v = Json::parse(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("b"), Some(&Json::Obj(BTreeMap::new())));
        assert!(Json::parse("{]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
    }

    #[test]
    fn tracer_output_validates() {
        let spans = vec![
            SpanRecord { name: Cow::Borrowed("epoch"), tid: 1, start_ns: 0, dur_ns: 10_000 },
            SpanRecord {
                name: Cow::Borrowed("epoch/lb_make"),
                tid: 1,
                start_ns: 1_000,
                dur_ns: 2_000,
            },
        ];
        let events = parse_chrome_trace(&chrome_trace_json(&spans)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "epoch");
        assert!(events[0].contains(&events[1]));
        assert!(!events[1].contains(&events[0]));
    }

    #[test]
    fn rejects_non_trace_documents() {
        assert!(parse_chrome_trace("[]").is_err());
        assert!(parse_chrome_trace(r#"{"traceEvents": [{"ph": "B"}]}"#).is_err());
        assert!(parse_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
    }
}
