//! Log-linear (HDR-style) histograms for latency distributions.
//!
//! Evaluation of epoch-batched oblivious stores (this paper's §7, Obladi's
//! tuning methodology) is driven by per-phase latency *percentiles*, not
//! means: a single slow subORAM scan stalls the whole epoch. A
//! [`LogHistogram`] records `u64` values (nanoseconds, by convention) into
//! buckets whose width grows geometrically — each power-of-two range is
//! split into [`SUBBUCKETS`] linear sub-buckets — so relative error is
//! bounded (< 1/SUBBUCKETS ≈ 6%) across the full range from nanoseconds to
//! hours while the whole histogram stays a few KiB of atomics.
//!
//! Recording is a single atomic increment (plus two for sum/count and a CAS
//! loop for max), so it is safe to share one histogram across all the
//! threads of a deployment plane and cheap enough for per-epoch hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two. 16 gives < 6.25% relative error.
pub const SUBBUCKETS: usize = 16;

const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros(); // 4
/// Octave 0 holds the first SUBBUCKETS unit-width buckets (values below
/// 2^SUB_BITS); octaves 1..=60 cover msb positions SUB_BITS..=63.
const OCTAVES: usize = 64 - SUB_BITS as usize + 1; // 61
const NUM_BUCKETS: usize = SUBBUCKETS * OCTAVES;

/// Maps a value to its bucket index.
fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = (v >> (msb - SUB_BITS)) as usize & (SUBBUCKETS - 1);
    octave * SUBBUCKETS + sub
}

/// The smallest value outside bucket `i` (exclusive upper bound is
/// `bucket_top(i) + 1`; we report the inclusive top).
fn bucket_top(i: usize) -> u64 {
    let octave = i / SUBBUCKETS;
    let sub = (i % SUBBUCKETS) as u64;
    if octave == 0 {
        return sub;
    }
    let shift = octave as u32 - 1;
    // u128 intermediate: the topmost octave's top would overflow u64.
    let top = (((SUBBUCKETS as u128 + sub as u128 + 1) << shift) - 1).min(u64::MAX as u128);
    top as u64
}

/// A concurrent log-linear histogram of `u64` samples.
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Clone for LogHistogram {
    fn clone(&self) -> LogHistogram {
        let out = LogHistogram::default();
        for (dst, src) in out.buckets.iter().zip(self.buckets.iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out.count.store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        out.sum.store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        out.max.store(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        out
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LogHistogram")
            .field("count", &s.count)
            .field("p50", &s.p50())
            .field("p99", &s.p99())
            .field("max", &s.max)
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples (weighted recording, e.g. from a
    /// simulator collapsing identical arrivals).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A consistent-enough point-in-time copy (individual loads are relaxed;
    /// concurrent recording may skew totals by in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Folds another histogram's counts into this one.
    pub fn absorb(&self, other: &LogHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// An immutable snapshot of a [`LogHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample recorded (exact, not bucketed).
    pub max: u64,
    /// Per-bucket counts, log-linear layout.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the inclusive top of the
    /// bucket containing the `ceil(q·count)`-th sample (0 if empty).
    ///
    /// Out-of-range `q` clamps to `[0, 1]`; a NaN `q` reads as 1.0 (the
    /// conservative upper end) rather than propagating garbage ranks.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the true max.
                return bucket_top(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive_upper_bound, cumulative_count)`
    /// pairs — exactly the shape a Prometheus histogram exposition needs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                cum += c;
                out.push((bucket_top(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..SUBBUCKETS as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, SUBBUCKETS as u64);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.max, SUBBUCKETS as u64 - 1);
        for v in 0..SUBBUCKETS as u64 {
            assert_eq!(bucket_top(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantile_empty_snapshot_is_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        for q in [0.0, 0.5, 0.99, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_single_sample_boundaries() {
        let h = LogHistogram::new();
        h.record(5_000);
        let s = h.snapshot();
        // Every quantile of a one-sample distribution is that sample (the
        // bucket top is capped at the recorded max, so it's exact).
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 5_000, "q={q}");
        }
    }

    #[test]
    fn quantile_extreme_q_boundaries() {
        let h = LogHistogram::new();
        for v in [10u64, 1_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        // q=0.0 still ranks the first sample (minimum's bucket), q=1.0 the
        // last; out-of-range q clamps, NaN reads as the upper end.
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(s.quantile(-3.0), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
        assert_eq!(s.quantile(f64::NAN), s.quantile(1.0));
        // q=1.0 never exceeds the true max even though the bucket top may.
        assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn bucket_tops_bound_their_members() {
        // Every value's bucket top is >= the value and within ~6.25% of it.
        for shift in 0..60 {
            for off in [0u64, 1, 7] {
                let v = (1u64 << shift).saturating_add(off * (1 << shift) / 8);
                let top = bucket_top(bucket_of(v));
                assert!(top >= v, "top {top} < v {v}");
                assert!(
                    (top - v) as f64 <= v as f64 / SUBBUCKETS as f64 + 1.0,
                    "top {top} too far above v {v}"
                );
            }
        }
    }

    #[test]
    fn buckets_partition_monotonically() {
        // Bucket index is monotone in the value and tops are strictly
        // increasing across consecutive distinct buckets.
        let mut prev_idx = 0;
        let mut prev_top = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let i = bucket_of(v);
            assert!(i >= prev_idx);
            if i != prev_idx {
                let t = bucket_top(i);
                assert!(t > prev_top);
                prev_idx = i;
                prev_top = t;
            }
        }
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.p50();
        assert!((4_700..=5_300).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((9_300..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(s.max, 10_000);
        assert!((s.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn weighted_and_absorbed_counts() {
        let a = LogHistogram::new();
        a.record_n(100, 5);
        let b = LogHistogram::new();
        b.record_n(200, 5);
        a.absorb(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 200);
        assert!(s.p50() >= 100 && s.p50() < 110);
        assert!(s.p99() >= 200);
        let cum = s.cumulative_buckets();
        assert_eq!(cum.len(), 2);
        assert_eq!(cum[1].1, 10);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 8000);
    }
}
