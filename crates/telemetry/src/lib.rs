//! snoopy-telemetry: leakage-audited observability for the whole cluster.
//!
//! Snoopy's evaluation lives on knowing where epoch time goes — balancer
//! batch assembly vs. subORAM linear scans vs. response matching — but
//! unlike an ordinary system, Snoopy may only *export* quantities that are
//! public under the paper's leakage definition (§2.1): configuration,
//! request volume `R`, functions of public values like the batch size
//! `f(R, S)`, wire-observable counts, and the timing of data-independent
//! code. This crate provides the telemetry plane and makes that restriction
//! structural:
//!
//! * [`public`] — the [`public::Public`] witness type: the only doorway
//!   into the exported-metrics plane, constructible only for provably
//!   public provenances. [`public::Secret`] values cannot be exported (it
//!   doesn't even compile — see the module's `compile_fail` doctests).
//! * [`hist`] — log-linear (HDR-style) latency histograms with
//!   p50/p90/p99/max snapshots; a few KiB of atomics each.
//! * [`trace`] — epoch-scoped spans in per-thread ring buffers, drainable
//!   as Chrome `trace_event` JSON for flamegraph-style inspection.
//! * [`metrics`] — the registry: counters/gauges/histograms keyed by
//!   `(name, label)` with a Prometheus text exposition and a provenance
//!   audit; [`metrics::global`] is the process-wide instance every
//!   deployment plane records into.
//! * [`chrome`] — a dependency-free JSON parser and Chrome-trace validator
//!   used by the acceptance tests.
//! * [`events`] — the flight recorder: a bounded ring of `Public`-gated
//!   lifecycle events (epoch starts, replay waves, degraded epochs,
//!   commits, reactor churn) with JSONL dumps for post-mortems.
//! * [`merge`] — combines per-process tracer dumps into one cluster-wide
//!   Chrome trace, aligning clocks via round-trip offset estimation.
//! * [`slo`] — Prometheus-exposition parsing and SLO burn gating for
//!   `snoopy-mon` and the CI observability suite.
//!
//! Zero dependencies, `std` only: the workspace builds with no network
//! access and the telemetry plane must not change that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod events;
pub mod hist;
pub mod merge;
pub mod metrics;
pub mod public;
pub mod slo;
pub mod trace;

pub use events::{Event, EventKind, EventRecord, FlightRecorder};
pub use hist::{HistogramSnapshot, LogHistogram};
pub use merge::{merged_chrome_trace, ProcessDump};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use public::{Provenance, Public, Secret};
pub use slo::{SloBurn, SloPolicy, SloReport};
pub use trace::{chrome_trace_json, span, tracer, SpanRecord, Tracer};
