//! Merging per-process span dumps into one cluster-wide Chrome trace.
//!
//! Each process's [`crate::trace::Tracer`] timestamps spans against its own
//! monotonic origin, so dumps from a balancer and its subORAMs live on
//! unrelated timelines. A [`ProcessDump`] anchors a drain to the wall
//! clock: `origin_unix_ns` is the tracer origin expressed as Unix time, and
//! `now_unix_ns` is the wall clock at dump time so the collector can
//! estimate the peer's clock offset from the RPC round trip
//! ([`estimate_offset_ns`], Cristian's algorithm — the same midpoint
//! estimate the session handshake uses for its per-peer offset gauge).
//!
//! [`merged_chrome_trace`] rebases every dump onto the collector's
//! timeline (`origin_unix_ns + start_ns − offset`, shifted so the earliest
//! span sits at ts 0), assigns each process a distinct Chrome `pid`, and
//! prefixes span names with the process name — the result loads in
//! `chrome://tracing`/Perfetto as one timeline with a lane per process,
//! and round-trips through the in-tree validator
//! ([`crate::chrome::parse_chrome_trace`]).
//!
//! **Leakage**: a dump contains span names/timings (already exportable —
//! [`crate::trace`]'s PublicTiming contract), the process's public
//! role/index, and wall-clock stamps of dump serving (timing of a
//! data-independent admin RPC). No new surface.

use crate::chrome::Json;
use crate::trace::{escape_json, SpanRecord};
use std::borrow::Cow;

/// One process's span drain, anchored to the wall clock.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessDump {
    /// Public process name, e.g. `loadbalancer/0` or `suboram/2`.
    pub process: String,
    /// The tracer's origin instant as Unix nanoseconds (on the process's
    /// own clock).
    pub origin_unix_ns: u64,
    /// Wall clock when the dump was served (process's own clock); the
    /// collector's offset estimate keys off this.
    pub now_unix_ns: u64,
    /// Spans lost to ring overwrites (lifetime) — nonzero means truncated.
    pub spans_dropped: u64,
    /// The drained spans.
    pub spans: Vec<SpanRecord>,
    /// Estimated offset of this process's clock relative to the
    /// collector's, in nanoseconds (`theirs − ours`). Not serialized; set
    /// by the collector before merging. 0 for the collector itself.
    pub clock_offset_ns: i64,
}

impl ProcessDump {
    /// Serializes the dump as one JSON document (offset excluded — it is
    /// collector-side state).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("{\"process\":\"");
        escape_json(&self.process, &mut out);
        out.push_str(&format!(
            "\",\"origin_unix_ns\":{},\"now_unix_ns\":{},\"spans_dropped\":{},\"spans\":[",
            self.origin_unix_ns, self.now_unix_ns, self.spans_dropped
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(&s.name, &mut out);
            out.push_str(&format!(
                "\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.tid, s.start_ns, s.dur_ns
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a serialized dump (offset initialized to 0).
    pub fn parse(text: &str) -> Result<ProcessDump, String> {
        let doc = Json::parse(text)?;
        let process =
            doc.get("process").and_then(Json::as_str).ok_or("missing process")?.to_string();
        let origin_unix_ns =
            doc.get("origin_unix_ns").and_then(Json::as_f64).ok_or("missing origin_unix_ns")?
                as u64;
        let now_unix_ns =
            doc.get("now_unix_ns").and_then(Json::as_f64).ok_or("missing now_unix_ns")? as u64;
        let spans_dropped = doc.get("spans_dropped").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mut spans = Vec::new();
        for (i, s) in
            doc.get("spans").and_then(Json::as_arr).ok_or("missing spans")?.iter().enumerate()
        {
            let name =
                s.get("name").and_then(Json::as_str).ok_or(format!("span {i}: missing name"))?;
            let tid =
                s.get("tid").and_then(Json::as_f64).ok_or(format!("span {i}: missing tid"))?;
            let start_ns = s
                .get("start_ns")
                .and_then(Json::as_f64)
                .ok_or(format!("span {i}: missing start_ns"))?;
            let dur_ns = s
                .get("dur_ns")
                .and_then(Json::as_f64)
                .ok_or(format!("span {i}: missing dur_ns"))?;
            spans.push(SpanRecord {
                name: Cow::Owned(name.to_string()),
                tid: tid as u64,
                start_ns: start_ns as u64,
                dur_ns: dur_ns as u64,
            });
        }
        Ok(ProcessDump {
            process,
            origin_unix_ns,
            now_unix_ns,
            spans_dropped,
            spans,
            clock_offset_ns: 0,
        })
    }
}

/// Captures a dump of `tracer` for this process: drains it and anchors the
/// origin to the wall clock.
pub fn capture_dump(process: &str, tracer: &crate::trace::Tracer) -> ProcessDump {
    let now_unix = crate::events::unix_now_ns();
    let now_rel = tracer.now_ns();
    let (spans, _) = tracer.drain();
    ProcessDump {
        process: process.to_string(),
        origin_unix_ns: now_unix.saturating_sub(now_rel),
        now_unix_ns: now_unix,
        spans_dropped: tracer.dropped_total(),
        spans,
        clock_offset_ns: 0,
    }
}

/// Cristian's midpoint clock-offset estimate from one request/response
/// round trip: the collector records its clock before (`t0`) and after
/// (`t1`) the RPC; the peer reports its clock (`t_remote`) while serving.
/// Returns the estimated offset `theirs − ours` in nanoseconds (accurate
/// to within half the round-trip time — microseconds on loopback).
pub fn estimate_offset_ns(t0_local_ns: u64, t_remote_ns: u64, t1_local_ns: u64) -> i64 {
    let midpoint = (t0_local_ns / 2).wrapping_add(t1_local_ns / 2) as i64;
    t_remote_ns as i64 - midpoint
}

/// Merges per-process dumps into one Chrome `trace_event` JSON document:
/// process *i* becomes `pid` *i + 1*, span names gain a
/// `<process>::` prefix, and every timestamp is rebased onto a shared
/// timeline (`origin + start − offset`, shifted so the earliest span is at
/// ts 0 — the validator rejects negative timestamps).
pub fn merged_chrome_trace(dumps: &[ProcessDump]) -> String {
    // Absolute (collector-clock) start of every span.
    let abs = |d: &ProcessDump, s: &SpanRecord| -> i64 {
        (d.origin_unix_ns as i64).wrapping_add(s.start_ns as i64) - d.clock_offset_ns
    };
    let min_abs =
        dumps.iter().flat_map(|d| d.spans.iter().map(move |s| abs(d, s))).min().unwrap_or(0);
    let total: usize = dumps.iter().map(|d| d.spans.len()).sum();
    let mut out = String::with_capacity(128 + total * 112);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pi, d) in dumps.iter().enumerate() {
        for s in &d.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json(&d.process, &mut out);
            out.push_str("::");
            escape_json(&s.name, &mut out);
            out.push_str(&format!(
                "\",\"cat\":\"snoopy\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                pi + 1,
                s.tid,
                (abs(d, s) - min_abs).max(0) as f64 / 1e3,
                s.dur_ns as f64 / 1e3
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::parse_chrome_trace;

    fn span(name: &str, tid: u64, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord { name: Cow::Owned(name.to_string()), tid, start_ns, dur_ns }
    }

    fn dump(process: &str, origin: u64, spans: Vec<SpanRecord>) -> ProcessDump {
        ProcessDump {
            process: process.to_string(),
            origin_unix_ns: origin,
            now_unix_ns: origin + 1_000_000,
            spans_dropped: 0,
            spans,
            clock_offset_ns: 0,
        }
    }

    #[test]
    fn dump_json_roundtrip() {
        let d = dump("suboram/1", 1_000_000, vec![span("epoch/suboram_scan/1", 2, 500, 250)]);
        let back = ProcessDump::parse(&d.render_json()).unwrap();
        assert_eq!(back, d);
        assert!(ProcessDump::parse("{}").is_err());
    }

    #[test]
    fn merged_trace_validates_and_aligns() {
        // Balancer origin at t=1ms; subORAM clock runs 5µs fast (offset
        // +5000ns) with origin at t=1.002ms on its own clock.
        let lb = dump("loadbalancer/0", 1_000_000, vec![span("epoch", 1, 0, 10_000)]);
        let mut sub = dump("suboram/0", 1_007_000, vec![span("epoch/suboram_scan/0", 1, 0, 4_000)]);
        sub.clock_offset_ns = 5_000;
        let json = merged_chrome_trace(&[lb, sub]);
        let events = parse_chrome_trace(&json).unwrap();
        assert_eq!(events.len(), 2);
        // Earliest span sits at ts 0; the subORAM span lands inside the
        // balancer's epoch span once the offset is subtracted
        // (1_007_000 − 5_000 − 1_000_000 = 2_000ns = 2µs).
        assert_eq!(events[0].ts, 0.0);
        assert_eq!(events[0].name, "loadbalancer/0::epoch");
        assert_eq!(events[1].name, "suboram/0::epoch/suboram_scan/0");
        assert!((events[1].ts - 2.0).abs() < 1e-9, "ts {}", events[1].ts);
        assert!(events[1].ts >= events[0].ts);
        assert!(events[1].ts + events[1].dur <= events[0].ts + events[0].dur);
        // Distinct processes got distinct pids.
        let doc = Json::parse(&json).unwrap();
        let pids: Vec<f64> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(pids, vec![1.0, 2.0]);
    }

    #[test]
    fn empty_merge_validates() {
        let json = merged_chrome_trace(&[]);
        assert!(parse_chrome_trace(&json).unwrap().is_empty());
    }

    #[test]
    fn offset_estimation_midpoint() {
        // Peer clock 1000ns ahead; RPC takes 400ns each way.
        let t0 = 10_000u64;
        let t_remote = 10_400 + 1_000;
        let t1 = 10_800u64;
        assert_eq!(estimate_offset_ns(t0, t_remote, t1), 1_000);
        // Symmetric case: no offset.
        assert_eq!(estimate_offset_ns(100, 150, 200), 0);
    }

    #[test]
    fn capture_dump_anchors_origin() {
        let t = crate::trace::Tracer::new();
        drop(t.span("work"));
        let d = capture_dump("loadbalancer/0", &t);
        assert_eq!(d.spans.len(), 1);
        assert!(d.origin_unix_ns > 0);
        assert!(d.now_unix_ns >= d.origin_unix_ns);
        // Origin + relative span start is a plausible wall-clock time.
        assert!(d.origin_unix_ns + d.spans[0].start_ns <= d.now_unix_ns + 1_000_000);
    }
}
