//! The exported-metrics plane: named counters, gauges, and histograms with
//! a Prometheus text exposition — every value entering through the
//! [`Public`] leakage gate.
//!
//! A [`MetricsRegistry`] is a set of series keyed by `(name, label)`.
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! the hot-path operations are single atomics. Because updates only accept
//! [`Public<T>`] witnesses, the registry can answer *why* each exported
//! series is safe: [`MetricsRegistry::audit`] lists the provenances each
//! series has been fed with, and tests assert the whole plane stays inside
//! the allowed set (see `tests/telemetry.rs` at the workspace root).
//!
//! The process-wide registry ([`global`]) is what the deployment planes
//! (in-process cluster, `snoopyd`) and the bench binaries all record into,
//! so `snoopyd metrics`, the in-process cluster's scrapes, and a bench
//! run's dump expose identical series.

use crate::hist::{HistogramSnapshot, LogHistogram};
use crate::public::{Provenance, Public};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Series key: metric name plus an optional single `key="value"` label.
type SeriesKey = (String, Option<(String, String)>);

#[derive(Default)]
struct ProvenanceMask(AtomicU8);

impl ProvenanceMask {
    fn note(&self, p: Provenance) {
        self.0.fetch_or(p.bit(), Ordering::Relaxed);
    }

    fn seen(&self) -> Vec<Provenance> {
        Provenance::from_mask(self.0.load(Ordering::Relaxed))
    }
}

struct CounterCell {
    value: AtomicU64,
    provenance: ProvenanceMask,
}

struct GaugeCell {
    /// f64 bits, stored atomically.
    bits: AtomicU64,
    provenance: ProvenanceMask,
}

struct HistCell {
    hist: LogHistogram,
    provenance: ProvenanceMask,
}

/// A monotone counter handle.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Adds a public quantity.
    pub fn add(&self, v: Public<u64>) {
        self.0.provenance.note(v.provenance());
        self.0.value.fetch_add(v.into_value(), Ordering::Relaxed);
    }

    /// Increments by one; the unit increment inherits the given provenance
    /// witness (e.g. `Public::wire_observable(())` for "one more frame").
    pub fn inc(&self, witness: Public<()>) {
        self.add(witness.carry(1));
    }

    /// Current value (scrape-side).
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle (last-write-wins float).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Sets the gauge to a public value.
    pub fn set(&self, v: Public<f64>) {
        self.0.provenance.note(v.provenance());
        self.0.bits.store(v.into_value().to_bits(), Ordering::Relaxed);
    }

    /// Current value (scrape-side).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// A latency-histogram handle. Samples are nanoseconds; the exposition
/// converts to seconds (Prometheus convention).
#[derive(Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Records a public duration.
    pub fn observe(&self, d: Public<std::time::Duration>) {
        self.0.provenance.note(d.provenance());
        self.0.hist.record_duration(d.into_value());
    }

    /// Records a public raw nanosecond sample (simulators).
    pub fn observe_ns(&self, ns: Public<u64>) {
        self.0.provenance.note(ns.provenance());
        self.0.hist.record(ns.into_value());
    }

    /// Snapshot for percentile assertions.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.hist.snapshot()
    }
}

/// One line of [`MetricsRegistry::audit`]: a series and the provenances of
/// every value it has been fed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Metric name.
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
    /// Series kind: `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Provenances observed on this series (empty until first update).
    pub provenances: Vec<Provenance>,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<SeriesKey, (Arc<CounterCell>, String)>>,
    gauges: Mutex<BTreeMap<SeriesKey, (Arc<GaugeCell>, String)>>,
    hists: Mutex<BTreeMap<SeriesKey, (Arc<HistCell>, String)>>,
}

/// A set of exported series. Cloning shares the underlying registry.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, help, None)
    }

    /// Registers (or fetches) a counter with one `key="value"` label.
    pub fn counter_labeled(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Counter {
        let key = series_key(name, label);
        let mut map = self.inner.counters.lock().unwrap();
        let (cell, _) = map.entry(key).or_insert_with(|| {
            (
                Arc::new(CounterCell {
                    value: AtomicU64::new(0),
                    provenance: ProvenanceMask::default(),
                }),
                help.to_string(),
            )
        });
        Counter(cell.clone())
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_labeled(name, help, None)
    }

    /// Registers (or fetches) a labeled gauge.
    pub fn gauge_labeled(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Gauge {
        let key = series_key(name, label);
        let mut map = self.inner.gauges.lock().unwrap();
        let (cell, _) = map.entry(key).or_insert_with(|| {
            (
                Arc::new(GaugeCell {
                    bits: AtomicU64::new(0f64.to_bits()),
                    provenance: ProvenanceMask::default(),
                }),
                help.to_string(),
            )
        });
        Gauge(cell.clone())
    }

    /// Registers (or fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_labeled(name, help, None)
    }

    /// Registers (or fetches) a labeled histogram.
    pub fn histogram_labeled(
        &self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> Histogram {
        let key = series_key(name, label);
        let mut map = self.inner.hists.lock().unwrap();
        let (cell, _) = map.entry(key).or_insert_with(|| {
            (
                Arc::new(HistCell {
                    hist: LogHistogram::new(),
                    provenance: ProvenanceMask::default(),
                }),
                help.to_string(),
            )
        });
        Histogram(cell.clone())
    }

    /// Every registered series with the provenances it has been fed — the
    /// dynamic half of the leakage audit.
    pub fn audit(&self) -> Vec<AuditEntry> {
        let mut out = Vec::new();
        for ((name, label), (cell, _)) in self.inner.counters.lock().unwrap().iter() {
            out.push(AuditEntry {
                name: name.clone(),
                label: label.clone(),
                kind: "counter",
                provenances: cell.provenance.seen(),
            });
        }
        for ((name, label), (cell, _)) in self.inner.gauges.lock().unwrap().iter() {
            out.push(AuditEntry {
                name: name.clone(),
                label: label.clone(),
                kind: "gauge",
                provenances: cell.provenance.seen(),
            });
        }
        for ((name, label), (cell, _)) in self.inner.hists.lock().unwrap().iter() {
            out.push(AuditEntry {
                name: name.clone(),
                label: label.clone(),
                kind: "histogram",
                provenances: cell.provenance.seen(),
            });
        }
        out
    }

    /// Renders the whole registry in Prometheus text exposition format.
    /// Histograms emit cumulative buckets in *seconds* (samples are
    /// nanoseconds) at each non-empty bucket boundary plus `+Inf`, so
    /// p50/p99 are derivable by any Prometheus-compatible scraper.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for ((name, label), (cell, help)) in self.inner.counters.lock().unwrap().iter() {
            if *name != last_name {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                last_name = name.clone();
            }
            out.push_str(&format!(
                "{}{} {}\n",
                name,
                render_label(label),
                cell.value.load(Ordering::Relaxed)
            ));
        }
        last_name.clear();
        for ((name, label), (cell, help)) in self.inner.gauges.lock().unwrap().iter() {
            if *name != last_name {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                last_name = name.clone();
            }
            let v = f64::from_bits(cell.bits.load(Ordering::Relaxed));
            out.push_str(&format!("{}{} {}\n", name, render_label(label), fmt_f64(v)));
        }
        last_name.clear();
        for ((name, label), (cell, help)) in self.inner.hists.lock().unwrap().iter() {
            if *name != last_name {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
                last_name = name.clone();
            }
            let snap = cell.hist.snapshot();
            for (top_ns, cum) in snap.cumulative_buckets() {
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    name,
                    render_label_with(label, "le", &fmt_f64(top_ns as f64 / 1e9)),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                render_label_with(label, "le", "+Inf"),
                snap.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                name,
                render_label(label),
                fmt_f64(snap.sum as f64 / 1e9)
            ));
            out.push_str(&format!("{}_count{} {}\n", name, render_label(label), snap.count));
        }
        out
    }
}

fn series_key(name: &str, label: Option<(&str, &str)>) -> SeriesKey {
    (name.to_string(), label.map(|(k, v)| (k.to_string(), v.to_string())))
}

fn render_label(label: &Option<(String, String)>) -> String {
    match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    }
}

fn render_label_with(label: &Option<(String, String)>, extra_k: &str, extra_v: &str) -> String {
    match label {
        Some((k, v)) => format!("{{{k}=\"{}\",{extra_k}=\"{extra_v}\"}}", escape_label(v)),
        None => format!("{{{extra_k}=\"{extra_v}\"}}"),
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Whether `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. External scrapers silently drop series with
/// invalid names, so the registry's tests hold every exported name to this
/// grammar.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name: `[a-zA-Z_][a-zA-Z0-9_]*`
/// (colons are reserved for metric names).
pub fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.9}")
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry all instrumented pipelines record into.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Well-known series names, so the planes and the tests agree.
pub mod names {
    /// Epochs executed by this process's balancer loop(s).
    pub const EPOCHS_TOTAL: &str = "snoopy_epochs_total";
    /// Client requests admitted into epochs.
    pub const REQUESTS_TOTAL: &str = "snoopy_requests_total";
    /// Batch entries sent to subORAMs (real + padding; a public shape).
    pub const BATCH_ENTRIES_TOTAL: &str = "snoopy_batch_entries_total";
    /// Per-stage latency histogram; label `stage` ∈ `lb_make`,
    /// `suboram_scan`, `lb_match`, `checkpoint_seal`, `dial`, `rpc`.
    pub const STAGE_SECONDS: &str = "snoopy_stage_seconds";
    /// Epoch batches re-sent to subORAMs (deadline-miss waves + replays
    /// after reconnects). Wire-observable: each re-send is a frame.
    pub const REPLAYS_TOTAL: &str = "snoopy_replays_total";
    /// Epochs the balancer completed in degraded mode (replay budget spent).
    pub const DEGRADED_EPOCHS_TOTAL: &str = "snoopy_degraded_epochs_total";
    /// Client requests failed with a typed `Unavailable` in degraded epochs.
    pub const UNAVAILABLE_TOTAL: &str = "snoopy_unavailable_total";
    /// Operation retries under a `RetryPolicy` (client roundtrips, dials,
    /// admin RPCs). Each retry re-opens or re-uses a connection — observable.
    pub const RETRIES_TOTAL: &str = "snoopy_retries_total";
    /// Faults injected by a chaos `FaultPlan`; label `kind` ∈ `drop`,
    /// `duplicate`, `delay`, `close`. The plan acts only on public inputs.
    pub const FAULTS_INJECTED_TOTAL: &str = "snoopy_faults_injected_total";
    /// Replayed batches refused because the epoch left the bounded reply
    /// cache (the balancer replaying is observable; the refusal is implicit
    /// wire silence).
    pub const EVICTED_REPLAYS_TOTAL: &str = "snoopy_evicted_replays_total";
    /// SubORAM batches refused with a typed error (e.g. duplicate ids from a
    /// buggy balancer). Each refusal is an explicit NACK frame — observable.
    pub const SUB_BATCH_FAILURES_TOTAL: &str = "snoopy_sub_batch_failures_total";
    /// SubORAM batches refused because their layout-generation stamp did not
    /// match the node's committed generation (mixed-layout fence). The refusal
    /// is an explicit NACK frame — observable.
    pub const STALE_LAYOUT_BATCHES_TOTAL: &str = "snoopy_stale_layout_batches_total";
    /// Bytes the disk storage tier read from segment files. Block I/O is a
    /// function of public geometry (every scan reads every block in order).
    pub const STORE_BYTES_READ_TOTAL: &str = "snoopy_store_bytes_read_total";
    /// Bytes the disk storage tier wrote to segment files (unconditional
    /// re-seal of every block — public geometry, like the read side).
    pub const STORE_BYTES_WRITTEN_TOTAL: &str = "snoopy_store_bytes_written_total";
    /// fsyncs issued by the disk tier (pending segments + directory entries
    /// at commit). One commit per epoch — observable cadence.
    pub const STORE_FSYNCS_TOTAL: &str = "snoopy_store_fsyncs_total";
    /// Scans where the write-behind buffer filled and forced a flush before
    /// the next read-ahead. Depends only on buffer/partition geometry.
    pub const STORE_BUFFER_STALLS_TOTAL: &str = "snoopy_store_buffer_stalls_total";
}

/// The global per-stage histogram for `stage` (cached handles are cheap —
/// this re-registers idempotently).
pub fn stage_histogram(stage: &str) -> Histogram {
    global().histogram_labeled(
        names::STAGE_SECONDS,
        "wall-clock of data-independent epoch stages",
        Some(("stage", stage)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = MetricsRegistry::new();
        let c = r.counter("snoopy_epochs_total", "epochs executed");
        c.add(Public::wire_observable(2));
        c.inc(Public::wire_observable(()));
        assert_eq!(c.value(), 3);
        let g = r.gauge_labeled("snoopy_info", "daemon info", Some(("role", "loadbalancer")));
        g.set(Public::config(1.0));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE snoopy_epochs_total counter"));
        assert!(text.contains("snoopy_epochs_total 3"));
        assert!(text.contains("snoopy_info{role=\"loadbalancer\"} 1"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h =
            r.histogram_labeled("snoopy_stage_seconds", "stage time", Some(("stage", "lb_make")));
        for ms in [1u64, 2, 2, 3] {
            h.observe(Public::timing(std::time::Duration::from_millis(ms)));
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE snoopy_stage_seconds histogram"));
        assert!(text.contains("snoopy_stage_seconds_bucket{stage=\"lb_make\",le=\"+Inf\"} 4"));
        assert!(text.contains("snoopy_stage_seconds_count{stage=\"lb_make\"} 4"));
        // Buckets are cumulative and end at the total count.
        let last_bucket =
            text.lines().rfind(|l| l.starts_with("snoopy_stage_seconds_bucket")).unwrap();
        assert!(last_bucket.ends_with(" 4"));
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert!(snap.p50() >= 1_900_000 && snap.p50() <= 2_200_000, "p50 {}", snap.p50());
    }

    #[test]
    fn audit_lists_provenances() {
        let r = MetricsRegistry::new();
        r.counter("a_total", "a").add(Public::wire_observable(1));
        r.gauge("b", "b").set(Public::config(3.0));
        let audit = r.audit();
        assert_eq!(audit.len(), 2);
        assert_eq!(audit[0].provenances, vec![Provenance::WireObservable]);
        assert_eq!(audit[1].provenances, vec![Provenance::Config]);
        // Same-name re-registration shares the series.
        r.counter("a_total", "a").add(Public::request_volume(1));
        let audit = r.audit();
        assert_eq!(
            audit[0].provenances,
            vec![Provenance::RequestVolume, Provenance::WireObservable]
        );
    }

    #[test]
    fn exported_names_match_prometheus_grammar() {
        // Every well-known constant and every name a populated registry
        // renders must satisfy the scraper's name grammar — an invalid name
        // would be dropped silently by a real Prometheus.
        let r = MetricsRegistry::new();
        r.counter(names::EPOCHS_TOTAL, "e").add(Public::wire_observable(1));
        r.gauge_labeled("snoopy_info", "i", Some(("role", "loadbalancer")))
            .set(Public::config(1.0));
        r.histogram_labeled(names::STAGE_SECONDS, "s", Some(("stage", "lb_make")))
            .observe(Public::timing(std::time::Duration::from_millis(1)));
        for entry in r.audit() {
            assert!(is_valid_metric_name(&entry.name), "bad metric name {:?}", entry.name);
            if let Some((k, _)) = &entry.label {
                assert!(is_valid_label_name(k), "bad label name {k:?}");
            }
        }
        for line in r.render_prometheus().lines() {
            let name = if let Some(rest) =
                line.strip_prefix("# HELP ").or_else(|| line.strip_prefix("# TYPE "))
            {
                rest.split_whitespace().next().unwrap()
            } else {
                line.split(['{', ' ']).next().unwrap()
            };
            assert!(is_valid_metric_name(name), "rendered bad name {name:?} in line {line:?}");
        }
    }

    #[test]
    fn name_grammar_rejects_invalid() {
        assert!(is_valid_metric_name("snoopy_epochs_total"));
        assert!(is_valid_metric_name(":subsystem:ok"));
        assert!(is_valid_metric_name("_hidden"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9starts_with_digit"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(!is_valid_metric_name("has space"));
        assert!(is_valid_label_name("stage"));
        assert!(!is_valid_label_name("sta:ge"));
        assert!(!is_valid_label_name("1stage"));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("snoopy_test_shared_total", "test");
        let before = c.value();
        global().counter("snoopy_test_shared_total", "test").inc(Public::config(()));
        assert_eq!(c.value(), before + 1);
    }
}
