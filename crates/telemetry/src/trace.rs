//! Epoch-scoped structured tracing with Chrome `trace_event` export.
//!
//! A [`span`] measures one stage of the epoch pipeline (`epoch/lb_make`,
//! `epoch/suboram_scan/<i>`, `epoch/lb_match`, net-layer `dial`/`rpc`/
//! `checkpoint_seal`, …). Completed spans land in a **per-thread ring
//! buffer**: recording takes one uncontended `Mutex` lock on the current
//! thread's own ring (contended only while a drain is snapshotting it), so
//! the hot path costs a clock read and a few stores. Rings are bounded —
//! old spans are overwritten, so an always-on tracer in a long-running
//! `snoopyd` uses constant memory.
//!
//! [`Tracer::drain`] collects every thread's completed spans, oldest first.
//! [`chrome_trace_json`] renders them in Chrome's `trace_event` JSON format
//! (load in `chrome://tracing`, Perfetto, or Speedscope for a flamegraph of
//! where the epoch went).
//!
//! **Leakage**: span names and durations are exported telemetry, so only
//! data-independent regions may be traced; names must be functions of
//! public values (stage names, machine indices — never object ids). This is
//! the [`crate::public::Provenance::PublicTiming`] contract, and the
//! histogram side of every instrumented span goes through the
//! [`crate::public::Public`] gate.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans kept per thread before the oldest is overwritten.
const RING_CAPACITY: usize = 8192;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name, e.g. `epoch/suboram_scan/3`. Public values only.
    pub name: Cow<'static, str>,
    /// Small stable id of the recording thread (Chrome `tid`).
    pub tid: u64,
    /// Start offset in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    /// Spans overwritten since the last drain (so dumps can say "truncated").
    dropped: u64,
}

/// The process-wide tracer. One exists per process ([`tracer`]); tests may
/// build private ones with [`Tracer::new`].
pub struct Tracer {
    /// Process-unique id; keys the per-thread ring map (a raw address could
    /// be reused by a later tracer).
    id: u64,
    origin: Instant,
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    next_tid: AtomicU64,
    enabled: AtomicBool,
    /// Lifetime count of spans lost to ring overwrites — unlike the
    /// per-drain count returned by [`Tracer::drain`], this never resets, so
    /// it can back a monotone counter.
    dropped_total: AtomicU64,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

impl Tracer {
    /// A fresh tracer with its own time origin.
    pub fn new() -> Tracer {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            origin: Instant::now(),
            rings: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
            enabled: AtomicBool::new(true),
            dropped_total: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since this tracer's origin.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Turns recording on/off (drains still work while disabled).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn register_ring(&self) -> (Arc<Mutex<Ring>>, u64) {
        let ring = Arc::new(Mutex::new(Ring { spans: VecDeque::new(), dropped: 0 }));
        self.rings.lock().unwrap().push(ring.clone());
        (ring, self.next_tid.fetch_add(1, Ordering::Relaxed))
    }

    /// Records a completed span directly (used by [`SpanGuard`] and by
    /// simulators that construct spans from *simulated* time — pass any
    /// consistent `start_ns`/`dur_ns` timeline).
    pub fn record(&self, name: Cow<'static, str>, tid: u64, start_ns: u64, dur_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.record_in_current_thread_ring(SpanRecord { name, tid, start_ns, dur_ns });
    }

    fn record_in_current_thread_ring(&self, rec: SpanRecord) {
        THREAD_RING.with(|cell| {
            let mut slot = cell.borrow_mut();
            let entry = slot.entry(self.id).or_insert_with(|| self.register_ring());
            let mut ring = entry.0.lock().unwrap();
            if ring.spans.len() >= RING_CAPACITY {
                ring.spans.pop_front();
                ring.dropped += 1;
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
            ring.spans.push_back(rec);
        });
    }

    /// The calling thread's stable tid under this tracer (registering the
    /// thread if needed). Useful for filtering a drain to one thread.
    pub fn current_tid(&self) -> u64 {
        THREAD_RING.with(|cell| {
            let mut slot = cell.borrow_mut();
            let entry = slot.entry(self.id).or_insert_with(|| self.register_ring());
            entry.1
        })
    }

    /// Opens a span on this tracer; it records itself when dropped.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name: name.into(),
            start: Instant::now(),
            start_ns: self.now_ns(),
            armed: self.enabled(),
        }
    }

    /// Removes and returns every thread's completed spans, ordered by start
    /// time, plus the number of spans lost to ring overwrites since the
    /// previous drain.
    pub fn drain(&self) -> (Vec<SpanRecord>, u64) {
        let rings = self.rings.lock().unwrap();
        let mut out = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            let mut ring = ring.lock().unwrap();
            out.extend(ring.spans.drain(..));
            dropped += ring.dropped;
            ring.dropped = 0;
        }
        out.sort_by_key(|s| s.start_ns);
        (out, dropped)
    }

    /// Lifetime count of spans overwritten by the bounded rings (never
    /// resets, unlike the per-drain count from [`Tracer::drain`]).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Spans currently buffered across all thread rings (occupancy).
    pub fn buffered(&self) -> usize {
        let rings = self.rings.lock().unwrap();
        rings.iter().map(|r| r.lock().unwrap().spans.len()).sum()
    }

    /// Publishes the tracer's own health as metrics: the cumulative
    /// overwrite count (`snoopy_trace_spans_dropped_total`, so truncated
    /// trace dumps are detectable rather than silently misleading) and the
    /// current buffer occupancy gauge. Both are functions of how many
    /// instrumented stages ran — wire-observable volume, never request
    /// contents.
    pub fn publish_metrics(&self, reg: &crate::metrics::MetricsRegistry) {
        let counter = reg.counter(
            "snoopy_trace_spans_dropped_total",
            "spans overwritten by the bounded trace ring buffers",
        );
        let total = self.dropped_total();
        let seen = counter.value();
        if total > seen {
            counter.add(crate::public::Public::wire_observable(total - seen));
        }
        reg.gauge("snoopy_trace_buffer_spans", "spans currently buffered in the trace rings")
            .set(crate::public::Public::wire_observable(self.buffered() as f64));
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

thread_local! {
    #[allow(clippy::type_complexity)]
    static THREAD_RING: std::cell::RefCell<
        std::collections::HashMap<u64, (Arc<Mutex<Ring>>, u64)>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer every instrumented pipeline records into.
pub fn tracer() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

/// Opens a span on the process-wide tracer.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard<'static> {
    tracer().span(name)
}

/// An open span; records itself into the tracer when dropped.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: Cow<'static, str>,
    start: Instant,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Closes the span now, returning its duration (also what `drop` uses).
    pub fn finish(mut self) -> std::time::Duration {
        let dur = self.start.elapsed();
        self.close(dur);
        std::mem::forget(self);
        dur
    }

    fn close(&mut self, dur: std::time::Duration) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let tid = self.tracer.current_tid();
        let rec = SpanRecord {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            tid,
            start_ns: self.start_ns,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        };
        self.tracer.record_in_current_thread_ring(rec);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        self.close(dur);
    }
}

pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders spans as Chrome `trace_event` JSON (the "JSON object format":
/// `{"traceEvents": [...]}` with `ph: "X"` complete events; `ts`/`dur` are
/// microseconds as floats).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"snoopy\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&s.tid.to_string());
        out.push_str(&format!(
            ",\"ts\":{:.3},\"dur\":{:.3}}}",
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3
        ));
    }
    out.push_str("]}");
    out
}

/// Renders spans as plain JSON lines (one record per line) for ad-hoc
/// processing.
pub fn spans_json_lines(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str(&format!(
            "\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
            s.tid, s.start_ns, s.dur_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain_in_order() {
        let t = Tracer::new();
        {
            let _outer = t.span("epoch");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = t.span("epoch/lb_make");
            std::thread::sleep(std::time::Duration::from_millis(1));
            drop(inner);
        }
        let (spans, dropped) = t.drain();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_ref()).collect();
        assert_eq!(names, vec!["epoch", "epoch/lb_make"]);
        // The outer span contains the inner one.
        assert!(spans[0].start_ns <= spans[1].start_ns);
        assert!(spans[0].start_ns + spans[0].dur_ns >= spans[1].start_ns + spans[1].dur_ns);
        // Drained: a second drain is empty.
        assert!(t.drain().0.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        drop(t.span("ignored"));
        assert!(t.drain().0.is_empty());
        t.set_enabled(true);
        drop(t.span("kept"));
        assert_eq!(t.drain().0.len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new();
        for i in 0..(RING_CAPACITY + 10) {
            t.record(Cow::Owned(format!("s{i}")), 1, i as u64, 1);
        }
        let (spans, dropped) = t.drain();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        assert_eq!(spans[0].name, "s10");
    }

    #[test]
    fn multi_thread_tids_are_distinct() {
        let t = Arc::new(Tracer::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                drop(t.span("work"));
                t.current_tid()
            }));
        }
        let mut tids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
        assert_eq!(t.drain().0.len(), 4);
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![SpanRecord {
            name: Cow::Borrowed("epoch/lb_make"),
            tid: 3,
            start_ns: 1500,
            dur_ns: 2500,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"epoch/lb_make\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd");
    }
}
