//! The flight recorder: a bounded ring of structured lifecycle events.
//!
//! Metrics answer "how much"; traces answer "where did the time go". The
//! flight recorder answers "what happened, in order" — the last few
//! thousand lifecycle events (epoch starts, sealed batches, subORAM
//! replies, replay waves, degraded epochs, storage/checkpoint commits,
//! reactor session churn) kept in constant memory per process, so a chaos
//! failure is explainable *after the fact* without rerunning it.
//!
//! **Leakage**: events live on the same side of the boundary as exported
//! metrics. Every field value enters through the [`Public`] witness gate
//! ([`Event::with`] accepts only `Public<u64>`), each record keeps the
//! provenances it was fed (auditable like [`crate::metrics`] series), and
//! the event kinds themselves are wire-observable facts — an epoch
//! boundary, a frame, an accept, a commit cadence. A [`crate::public::Secret`]
//! value cannot be placed in an event:
//!
//! ```compile_fail
//! use snoopy_telemetry::events::{Event, EventKind};
//! use snoopy_telemetry::public::Secret;
//!
//! // The post-dedup dummy count is secret; an event field only accepts
//! // Public<u64>, so this does not compile.
//! let dummies: Secret<u64> = Secret::new(3);
//! let ev = Event::new(EventKind::BatchSealed).with("dummies", dummies);
//! ```
//!
//! Dumps are JSON lines ([`to_jsonl`] / [`parse_jsonl`]), written by the
//! daemons on degraded epochs and at shutdown (`SNOOPY_FLIGHT_DIR`), and
//! drained remotely over the `EVENTS` admin RPC.

use crate::public::{Provenance, Public};
use crate::trace::escape_json;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Events kept per process before the oldest is overwritten.
pub const DEFAULT_CAPACITY: usize = 4096;

/// What happened. Every kind is a wire-observable or public-timing fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A balancer epoch ticked (epoch boundaries are wire-visible cadence).
    EpochStart,
    /// The balancer sealed and sent this epoch's batches.
    BatchSealed,
    /// A subORAM's sealed response was accepted by the balancer.
    SubReply,
    /// A deadline/teardown wave re-sent sealed batches to a subORAM.
    ReplayWave,
    /// The replay budget ran out; the epoch completed degraded.
    EpochDegraded,
    /// A subORAM refused a replay because the epoch left the reply cache.
    ReplayEvicted,
    /// A subORAM sealed and persisted its per-epoch checkpoint.
    CheckpointCommit,
    /// The storage tier committed a sealed on-disk generation.
    StorageCommit,
    /// The reactor accepted a connection.
    NetAccept,
    /// The reactor tore down a session.
    NetClose,
    /// A session crossed into backpressure (writes paused reads).
    NetBackpressure,
    /// The daemon is shutting down.
    Shutdown,
    /// A reshard committed: the node flipped to a new fleet layout. The
    /// reconfiguration event is public by design (the migration's *shape*
    /// is what stays data-independent).
    ReshardCommit,
    /// A reshard was aborted (driver verdict or pause-TTL expiry); the node
    /// resumed its old layout.
    ReshardAbort,
    /// A subORAM refused a batch whose layout-generation stamp did not match
    /// its committed generation (mixed-layout fence).
    StaleLayoutBatch,
}

impl EventKind {
    /// Stable label used in dumps.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::EpochStart => "epoch_start",
            EventKind::BatchSealed => "batch_sealed",
            EventKind::SubReply => "sub_reply",
            EventKind::ReplayWave => "replay_wave",
            EventKind::EpochDegraded => "epoch_degraded",
            EventKind::ReplayEvicted => "replay_evicted",
            EventKind::CheckpointCommit => "checkpoint_commit",
            EventKind::StorageCommit => "storage_commit",
            EventKind::NetAccept => "net_accept",
            EventKind::NetClose => "net_close",
            EventKind::NetBackpressure => "net_backpressure",
            EventKind::Shutdown => "shutdown",
            EventKind::ReshardCommit => "reshard_commit",
            EventKind::ReshardAbort => "reshard_abort",
            EventKind::StaleLayoutBatch => "stale_layout_batch",
        }
    }

    /// Parses a dump label back into a kind.
    pub fn from_label(s: &str) -> Option<EventKind> {
        EventKind::all().into_iter().find(|k| k.label() == s)
    }

    /// Every kind (for exhaustive audits).
    pub fn all() -> [EventKind; 15] {
        [
            EventKind::EpochStart,
            EventKind::BatchSealed,
            EventKind::SubReply,
            EventKind::ReplayWave,
            EventKind::EpochDegraded,
            EventKind::ReplayEvicted,
            EventKind::CheckpointCommit,
            EventKind::StorageCommit,
            EventKind::NetAccept,
            EventKind::NetClose,
            EventKind::NetBackpressure,
            EventKind::Shutdown,
            EventKind::ReshardCommit,
            EventKind::ReshardAbort,
            EventKind::StaleLayoutBatch,
        ]
    }

    /// Kinds that mark a failure worth an immediate post-mortem dump.
    pub fn is_failure(self) -> bool {
        matches!(self, EventKind::EpochDegraded)
    }
}

/// An event under construction. Fields enter only through the [`Public`]
/// gate; [`record`] (or [`FlightRecorder::record`]) stamps time and
/// sequence.
#[derive(Clone, Debug)]
pub struct Event {
    kind: EventKind,
    fields: Vec<(&'static str, u64)>,
    mask: u8,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: EventKind) -> Event {
        Event { kind, fields: Vec::new(), mask: 0 }
    }

    /// Attaches a named public field. This is the only way to put a value
    /// on an event — a `Secret<u64>` is not accepted (see the module doc's
    /// `compile_fail` proof).
    pub fn with(mut self, name: &'static str, value: Public<u64>) -> Event {
        self.mask |= value.provenance().bit();
        self.fields.push((name, value.into_value()));
        self
    }
}

/// One recorded event, as stored in the ring and in dumps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotone per-process sequence number (never resets).
    pub seq: u64,
    /// Wall-clock at record time, nanoseconds since the Unix epoch.
    pub t_unix_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Named public field values, in attach order.
    pub fields: Vec<(String, u64)>,
    /// Provenances of every field value (the leakage audit trail).
    pub provenances: Vec<Provenance>,
}

impl EventRecord {
    /// The value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// A bounded per-process ring of [`EventRecord`]s.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<EventRecord>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    /// `role/index` of the owning process, for dump filenames.
    identity: Mutex<Option<String>>,
    /// Directory for automatic JSONL dumps (degraded epochs, shutdown).
    dump_dir: Mutex<Option<PathBuf>>,
    dump_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            identity: Mutex::new(None),
            dump_dir: Mutex::new(None),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// Names the owning process (`role`, `index`) for dump files.
    pub fn set_identity(&self, role: &str, index: u64) {
        *self.identity.lock().unwrap() = Some(format!("{role}-{index}"));
    }

    /// Sets (or clears) the directory for automatic post-mortem dumps.
    pub fn set_dump_dir(&self, dir: Option<PathBuf>) {
        *self.dump_dir.lock().unwrap() = dir;
    }

    /// Records an event, stamping wall-clock time and a sequence number.
    /// Failure-kind events additionally flush a post-mortem dump if a dump
    /// directory is configured.
    pub fn record(&self, ev: Event) {
        let rec = EventRecord {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            t_unix_ns: unix_now_ns(),
            kind: ev.kind,
            fields: ev.fields.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            provenances: Provenance::from_mask(ev.mask),
        };
        let kind = rec.kind;
        {
            let mut ring = self.ring.lock().unwrap();
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(rec);
        }
        if kind.is_failure() {
            self.dump("degraded");
        }
    }

    /// A copy of the buffered events, oldest first. Non-destructive so a
    /// remote drain does not erase the post-mortem state a later crash dump
    /// would need.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Events overwritten by the bounded ring since process start.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the current snapshot as JSONL into the configured dump
    /// directory (no-op without one). Returns the path written. Filenames
    /// are `<role>-<index>.<n>.<reason>.events.jsonl`, so repeated dumps
    /// never clobber each other.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dump_dir.lock().unwrap().clone()?;
        let who = self.identity.lock().unwrap().clone().unwrap_or_else(|| "proc".to_string());
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("{who}.{n}.{reason}.events.jsonl"));
        let body = to_jsonl(&self.snapshot());
        let _ = std::fs::create_dir_all(&dir);
        std::fs::write(&path, body).ok()?;
        Some(path)
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder. Its dump directory is seeded from
/// `SNOOPY_FLIGHT_DIR` on first use.
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| {
        let r = FlightRecorder::new();
        if let Ok(dir) = std::env::var("SNOOPY_FLIGHT_DIR") {
            if !dir.is_empty() {
                r.set_dump_dir(Some(PathBuf::from(dir)));
            }
        }
        r
    })
}

/// Records an event into the process-wide recorder.
pub fn record(ev: Event) {
    recorder().record(ev);
}

/// Wall-clock now, nanoseconds since the Unix epoch.
pub fn unix_now_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// Renders records as JSON lines — one event per line, fields in attach
/// order under a `fields` object, provenances labeled for the audit trail.
pub fn to_jsonl(records: &[EventRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128);
    for r in records {
        out.push_str(&format!("{{\"seq\":{},\"t_unix_ns\":{},\"kind\":\"", r.seq, r.t_unix_ns));
        out.push_str(r.kind.label());
        out.push_str("\",\"fields\":{");
        for (i, (n, v)) in r.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(n, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"provenance\":[");
        for (i, p) in r.provenances.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(p.label());
            out.push('"');
        }
        out.push_str("]}\n");
    }
    out
}

/// Parses a JSONL dump back into records (validating each line with the
/// in-tree JSON parser).
pub fn parse_jsonl(text: &str) -> Result<Vec<EventRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = crate::chrome::Json::parse(line).map_err(|e| format!("line {i}: {e}"))?;
        let seq = doc
            .get("seq")
            .and_then(crate::chrome::Json::as_f64)
            .ok_or(format!("line {i}: missing seq"))? as u64;
        let t_unix_ns = doc
            .get("t_unix_ns")
            .and_then(crate::chrome::Json::as_f64)
            .ok_or(format!("line {i}: missing t_unix_ns"))? as u64;
        let kind = doc
            .get("kind")
            .and_then(crate::chrome::Json::as_str)
            .and_then(EventKind::from_label)
            .ok_or(format!("line {i}: bad kind"))?;
        let mut fields = Vec::new();
        if let Some(crate::chrome::Json::Obj(map)) = doc.get("fields") {
            for (k, v) in map {
                let v = v.as_f64().ok_or(format!("line {i}: non-numeric field {k}"))?;
                fields.push((k.clone(), v as u64));
            }
        }
        let mut provenances = Vec::new();
        if let Some(arr) = doc.get("provenance").and_then(crate::chrome::Json::as_arr) {
            for p in arr {
                let label = p.as_str().ok_or(format!("line {i}: bad provenance"))?;
                let p = [
                    Provenance::Config,
                    Provenance::RequestVolume,
                    Provenance::WireObservable,
                    Provenance::PublicTiming,
                    Provenance::Derived,
                ]
                .into_iter()
                .find(|p| p.label() == label)
                .ok_or(format!("line {i}: unknown provenance {label}"))?;
                provenances.push(p);
            }
        }
        out.push(EventRecord { seq, t_unix_ns, kind, fields, provenances });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_roundtrip() {
        let r = FlightRecorder::with_capacity(8);
        r.record(
            Event::new(EventKind::EpochStart)
                .with("epoch", Public::wire_observable(7))
                .with("requests", Public::request_volume(12)),
        );
        r.record(Event::new(EventKind::SubReply).with("suboram", Public::wire_observable(1)));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, EventKind::EpochStart);
        assert_eq!(snap[0].field("epoch"), Some(7));
        assert_eq!(snap[0].field("requests"), Some(12));
        assert_eq!(
            snap[0].provenances,
            vec![Provenance::RequestVolume, Provenance::WireObservable]
        );
        assert!(snap[0].seq < snap[1].seq);
        assert!(snap[0].t_unix_ns > 0);
        // Snapshot is non-destructive.
        assert_eq!(r.snapshot().len(), 2);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(Event::new(EventKind::NetAccept).with("n", Public::wire_observable(i)));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(snap[0].field("n"), Some(6));
        assert_eq!(snap[3].field("n"), Some(9));
    }

    #[test]
    fn jsonl_roundtrip() {
        let r = FlightRecorder::with_capacity(8);
        r.record(
            Event::new(EventKind::EpochDegraded)
                .with("epoch", Public::wire_observable(3))
                .with("failed", Public::wire_observable(1)),
        );
        r.record(Event::new(EventKind::Shutdown));
        let text = to_jsonl(&r.snapshot());
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].kind, EventKind::EpochDegraded);
        assert_eq!(back[0].field("failed"), Some(1));
        assert_eq!(back[1].kind, EventKind::Shutdown);
        assert!(back[1].fields.is_empty());
        assert!(parse_jsonl("not json\n").is_err());
    }

    #[test]
    fn failure_events_auto_dump() {
        let dir = std::env::temp_dir().join(format!("snoopy-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::with_capacity(8);
        r.set_identity("loadbalancer", 0);
        r.set_dump_dir(Some(dir.clone()));
        r.record(Event::new(EventKind::EpochStart).with("epoch", Public::wire_observable(1)));
        r.record(Event::new(EventKind::EpochDegraded).with("epoch", Public::wire_observable(1)));
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 1, "exactly one degraded dump: {files:?}");
        let name = files[0].file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("loadbalancer-0.") && name.contains("degraded"), "{name}");
        let back = parse_jsonl(&std::fs::read_to_string(&files[0]).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].kind, EventKind::EpochDegraded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_labels_roundtrip() {
        for k in EventKind::all() {
            assert_eq!(EventKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EventKind::from_label("nope"), None);
    }
}
