//! The flight recorder under chaos: a killed subORAM's degraded epochs must
//! be *explained* by the in-process event ring — and every event the epoch
//! loops emit must carry a public provenance trail.
//!
//! Runs in its own test binary so the process-wide recorder holds exactly
//! this cluster's events.

use snoopy_chaos::{chaos_seed, FaultPlan, FaultPlanConfig};
use snoopy_core::transport::EpochFaultPolicy;
use snoopy_core::{InProcessCluster, SnoopyConfig};
use snoopy_enclave::wire::StoredObject;
use snoopy_telemetry::events::{self, EventKind};
use snoopy_telemetry::Provenance;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

const VLEN: usize = 24;
const NUM_OBJECTS: u64 = 96;

fn objects() -> Vec<StoredObject> {
    (0..NUM_OBJECTS).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

/// The provenances each daemon-emitted event kind is allowed to carry. This
/// is the runtime half of the leakage argument: the compile-time half (a
/// `Secret<u64>` cannot even be attached) lives in `telemetry::events`'s
/// `compile_fail` doctest.
fn allowed_provenances(kind: EventKind) -> &'static [Provenance] {
    match kind {
        EventKind::EpochStart | EventKind::EpochDegraded => {
            &[Provenance::RequestVolume, Provenance::WireObservable]
        }
        EventKind::BatchSealed => &[Provenance::Config, Provenance::WireObservable],
        EventKind::SubReply
        | EventKind::ReplayWave
        | EventKind::ReplayEvicted
        | EventKind::CheckpointCommit
        | EventKind::StorageCommit
        | EventKind::NetAccept
        | EventKind::NetClose
        | EventKind::NetBackpressure => &[Provenance::WireObservable],
        // A reshard is a public reconfiguration event: generation and fleet
        // size are operator-chosen configuration, never request-derived.
        EventKind::ReshardCommit | EventKind::ReshardAbort => &[Provenance::Config],
        // A stale-layout refusal names the wire-visible batch (epoch, lb)
        // plus the configured generation it was stamped with.
        EventKind::StaleLayoutBatch => &[Provenance::Config, Provenance::WireObservable],
        EventKind::Shutdown => &[],
    }
}

#[test]
fn killed_suboram_chaos_is_explained_by_the_flight_recorder() {
    let seed = chaos_seed(0xC4A5_0004);
    eprintln!("CHAOS_SEED={seed}");
    // SubORAM 1 dead for epochs 0 and 1, healthy after (same plan shape as
    // the typed-degrade chaos test).
    let plan = Arc::new(FaultPlan::new(FaultPlanConfig::new(seed).kill(1, 0, 2)));
    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 1);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 29, policy, plan);
    let client = cluster.client();

    for epoch in 0..4u64 {
        let rx = client.read_async(epoch % NUM_OBJECTS);
        cluster.tick();
        let reply = rx.recv_timeout(Duration::from_secs(30)).expect("cluster hung");
        assert_eq!(reply.is_err(), epoch < 2, "epoch {epoch} on the wrong side of the heal");
    }
    cluster.shutdown();

    let ring = events::recorder().snapshot();
    let kinds: BTreeSet<EventKind> = ring.iter().map(|e| e.kind).collect();
    for kind in [
        EventKind::EpochStart,
        EventKind::BatchSealed,
        EventKind::SubReply,
        EventKind::ReplayWave,
        EventKind::EpochDegraded,
    ] {
        assert!(kinds.contains(&kind), "epoch loops never emitted {kind:?}; saw {kinds:?}");
    }

    // Attribution: the replay waves and both degraded epochs name exactly
    // the killed subORAM, with the epoch ids the client saw fail.
    assert!(ring.iter().any(|e| e.kind == EventKind::ReplayWave && e.field("suboram") == Some(1)));
    for epoch in [0u64, 1] {
        let ev = ring
            .iter()
            .find(|e| e.kind == EventKind::EpochDegraded && e.field("epoch") == Some(epoch))
            .unwrap_or_else(|| panic!("degraded epoch {epoch} not in the ring"));
        assert_eq!(ev.field("subs_mask"), Some(1 << 1), "wrong subORAM blamed: {ev:?}");
        assert_eq!(ev.field("failed"), Some(1));
    }
    // The healed epochs committed: per-epoch replies from both subORAMs.
    assert!(ring.iter().any(|e| e.kind == EventKind::SubReply && e.field("epoch") == Some(3)));

    // Provenance audit over every event the daemons emitted: each field
    // entered through the Public gate, and each kind carries only the
    // provenances its public fields can have.
    for e in &ring {
        assert_eq!(
            e.provenances.is_empty(),
            e.fields.is_empty(),
            "fields without a provenance trail: {e:?}"
        );
        for p in &e.provenances {
            assert!(
                allowed_provenances(e.kind).contains(p),
                "{:?} carries unexpected provenance {p:?}",
                e.kind
            );
        }
    }
}
