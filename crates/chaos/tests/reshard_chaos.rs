//! Chaos on the elastic reshard protocol, channel plane: a live grow and a
//! live shrink ride a lossy data plane and the cluster stays byte-identical
//! to the reference engine — the migration's control traffic and the epoch
//! pipeline's replay machinery must not trip over each other.
//!
//! (The net plane's mid-migration SIGKILL → rollback scenario lives in
//! `crates/net/tests/reshard.rs`; this file attacks the in-process plane,
//! where faults are injected before sealing.)
//!
//! Reproduce a failure with `CHAOS_SEED=<printed seed> cargo test -p
//! snoopy-chaos`.

use snoopy_chaos::{chaos_seed, DirectionFaults, FaultPlan, FaultPlanConfig};
use snoopy_core::transport::EpochFaultPolicy;
use snoopy_core::{InProcessCluster, Snoopy, SnoopyConfig};
use snoopy_enclave::wire::{Request, StoredObject};
use std::sync::Arc;
use std::time::Duration;

const VLEN: usize = 24;
const NUM_OBJECTS: u64 = 96;

fn objects() -> Vec<StoredObject> {
    (0..NUM_OBJECTS).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

fn lossy_plan(seed: u64) -> FaultPlanConfig {
    let faults = DirectionFaults {
        drop_per_mille: 150,
        duplicate_per_mille: 150,
        delay_per_mille: 100,
        close_per_mille: 0,
        delay: Duration::from_millis(1),
    };
    FaultPlanConfig::new(seed).batch(faults).response(faults)
}

/// Runs `ops` reads/writes against both the chaos cluster and the reference
/// engine, panicking on the first divergence.
fn drive(cluster: &mut InProcessCluster, reference: &mut Snoopy, base: u64, ops: u64) {
    let client = cluster.client();
    for i in base..base + ops {
        let id = (i * 11 + 2) % NUM_OBJECTS;
        let (rx, want_req) = if i % 3 == 0 {
            let payload = format!("reshard{i}").into_bytes();
            (client.write_async(id, &payload), Request::write(id, &payload, VLEN, 0, i))
        } else {
            (client.read_async(id), Request::read(id, VLEN, 0, i))
        };
        cluster.tick();
        let got = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("cluster hung under faults")
            .unwrap_or_else(|u| panic!("op {i} degraded under a recoverable plan: {u}"));
        let want = reference.execute_epoch_single(vec![want_req]).unwrap();
        assert_eq!(got.value, want[0].value, "op {i} diverged from the reference engine");
    }
}

#[test]
fn grow_and_shrink_ride_a_lossy_data_plane_byte_for_byte() {
    let seed = chaos_seed(0xC4A5_0010);
    eprintln!("CHAOS_SEED={seed}");
    let plan = Arc::new(FaultPlan::new(lossy_plan(seed)));
    // 4 provisioned subORAMs, 2 holding data: room to grow and shrink.
    let cfg = SnoopyConfig::with_machines(1, 4).value_len(VLEN).active_suborams(2);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 12);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 31, policy, plan.clone());
    let mut reference = Snoopy::init(cfg, objects(), 31);

    // Steady state on 2, then a live grow to 4, then a shrink to 3 — each
    // phase byte-compared to the (never-resharded) reference. The fault plan
    // keeps dropping and duplicating data-plane batches throughout, so the
    // migration boundaries land between replay waves.
    drive(&mut cluster, &mut reference, 0, 15);
    cluster.reshard(4).expect("grow 2->4 under a lossy data plane");
    assert_eq!((cluster.generation(), cluster.active_suborams()), (1, 4));
    drive(&mut cluster, &mut reference, 15, 15);
    cluster.reshard(3).expect("shrink 4->3 under a lossy data plane");
    assert_eq!((cluster.generation(), cluster.active_suborams()), (2, 3));
    drive(&mut cluster, &mut reference, 30, 15);

    let summary = plan.summary();
    assert!(summary.drops > 0, "plan never dropped anything: {summary}");
    assert!(summary.duplicates > 0, "plan never duplicated anything: {summary}");
    cluster.shutdown();
}

#[test]
fn reshard_refuses_to_leave_the_provisioned_fleet() {
    let seed = chaos_seed(0xC4A5_0011);
    eprintln!("CHAOS_SEED={seed}");
    let plan = Arc::new(FaultPlan::new(lossy_plan(seed)));
    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 12);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 32, policy, plan);
    // Out-of-range targets fail typed without disturbing the live layout…
    cluster.reshard(0).expect_err("new_s = 0 must be refused");
    cluster.reshard(3).expect_err("new_s beyond the provisioned fleet must be refused");
    assert_eq!((cluster.generation(), cluster.active_suborams()), (0, 2));
    // …and the cluster still serves correctly afterwards.
    let mut reference = Snoopy::init(cfg, objects(), 32);
    drive(&mut cluster, &mut reference, 0, 6);
    cluster.shutdown();
}
