//! Chaos on the in-process plane: the cluster under a seeded [`FaultPlan`]
//! must either stay byte-identical to the reference engine or fail typed —
//! never hang, never corrupt.
//!
//! Reproduce a failure with `CHAOS_SEED=<printed seed> cargo test -p
//! snoopy-chaos`.

use snoopy_chaos::{chaos_seed, DirectionFaults, FaultPlan, FaultPlanConfig, Partition};
use snoopy_core::transport::EpochFaultPolicy;
use snoopy_core::{InProcessCluster, Snoopy, SnoopyConfig};
use snoopy_enclave::wire::{Request, StoredObject};
use std::sync::Arc;
use std::time::Duration;

const VLEN: usize = 24;
const NUM_OBJECTS: u64 = 96;

fn objects() -> Vec<StoredObject> {
    (0..NUM_OBJECTS).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

/// A lossy-but-recoverable plan: drops, duplicates, and short delays on both
/// directions. Paired with a deadline policy that replays well past the drop
/// rate, every epoch must eventually commit.
fn lossy_plan(seed: u64) -> FaultPlanConfig {
    let faults = DirectionFaults {
        drop_per_mille: 150,
        duplicate_per_mille: 150,
        delay_per_mille: 100,
        close_per_mille: 0,
        delay: Duration::from_millis(1),
    };
    FaultPlanConfig::new(seed).batch(faults).response(faults)
}

#[test]
fn lossy_cluster_matches_reference_byte_for_byte() {
    let seed = chaos_seed(0xC4A5_0001);
    eprintln!("CHAOS_SEED={seed}");
    let plan = Arc::new(FaultPlan::new(lossy_plan(seed)));
    let cfg = SnoopyConfig::with_machines(1, 3).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 12);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 21, policy, plan.clone());
    let client = cluster.client();
    let mut reference = Snoopy::init(cfg, objects(), 21);

    for i in 0..40u64 {
        let id = (i * 11 + 2) % NUM_OBJECTS;
        let (rx, want_req) = if i % 3 == 0 {
            let payload = format!("chaos{i}").into_bytes();
            (client.write_async(id, &payload), Request::write(id, &payload, VLEN, 0, i))
        } else {
            (client.read_async(id), Request::read(id, VLEN, 0, i))
        };
        cluster.tick();
        let got = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("cluster hung under faults")
            .unwrap_or_else(|u| panic!("op {i} degraded under a recoverable plan: {u}"));
        let want = reference.execute_epoch_single(vec![want_req]).unwrap();
        assert_eq!(got.value, want[0].value, "op {i} diverged from the reference engine");
    }
    let summary = plan.summary();
    assert!(summary.drops > 0, "plan never dropped anything: {summary}");
    assert!(summary.duplicates > 0, "plan never duplicated anything: {summary}");
    cluster.shutdown();
}

#[test]
fn killed_suboram_degrades_typed_then_heals() {
    let seed = chaos_seed(0xC4A5_0002);
    eprintln!("CHAOS_SEED={seed}");
    // SubORAM 1 is dead (total partition) for epochs 0 and 1, healthy after.
    let plan = Arc::new(FaultPlan::new(FaultPlanConfig::new(seed).kill(1, 0, 2)));
    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 1);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 22, policy, plan.clone());
    let client = cluster.client();

    for epoch in 0..4u64 {
        let rx = client.read_async(epoch % NUM_OBJECTS);
        cluster.tick();
        let reply = rx.recv_timeout(Duration::from_secs(30)).expect("cluster hung");
        if epoch < 2 {
            let err = reply.expect_err("epoch under a dead subORAM must fail typed");
            assert_eq!(err.epoch, epoch);
            assert_eq!(err.failed_suborams, vec![1]);
        } else {
            let resp = reply.unwrap_or_else(|u| panic!("healed epoch {epoch} still failed: {u}"));
            let mut want = (epoch % NUM_OBJECTS).to_le_bytes().to_vec();
            want.resize(VLEN, 0);
            assert_eq!(resp.value, want);
        }
    }
    // Heal is observable in the plan too: partition drops stopped at 2
    // epochs × (1 first send + 1 replay).
    assert_eq!(plan.summary().partition_drops, 4);
    cluster.shutdown();
}

#[test]
fn severed_partition_wildcards_cut_every_balancer() {
    let seed = chaos_seed(0xC4A5_0003);
    eprintln!("CHAOS_SEED={seed}");
    // Wildcard balancer side: both balancers lose subORAM 0 in their first
    // epoch. Epoch ids are composite (`wall * k + lb`), so the first tick of
    // a 2-balancer cluster stamps ids 0 and 1 — the window spans both.
    let plan = Arc::new(FaultPlan::new(FaultPlanConfig::new(seed).partition(Partition {
        lb: None,
        suboram: Some(0),
        from_epoch: 0,
        until_epoch: 2,
    })));
    let cfg = SnoopyConfig::with_machines(2, 2).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(40), 1);
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects(), 23, policy, plan);
    let client = cluster.client();
    // Two reads land on the two balancers (round-robin); both degrade.
    let rx0 = client.read_async(1);
    let rx1 = client.read_async(2);
    cluster.tick();
    for rx in [rx0, rx1] {
        let err = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("cluster hung")
            .expect_err("the first epoch must degrade on both balancers");
        assert_eq!(err.failed_suborams, vec![0]);
    }
    // The second wall epoch (ids 2 and 3) is healthy everywhere.
    let rx = client.read_async(3);
    cluster.tick();
    assert!(rx.recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
    cluster.shutdown();
}
