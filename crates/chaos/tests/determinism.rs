//! The acceptance bar for the chaos harness: the same `FaultPlan` seed must
//! produce identical retry/replay telemetry across two runs.
//!
//! This test lives alone in its own integration binary because it reads
//! deltas of the process-wide telemetry registry; concurrent tests in the
//! same process would pollute the counters.

use snoopy_chaos::{chaos_seed, FaultPlan, FaultPlanConfig, PlanSummary};
use snoopy_core::transport::EpochFaultPolicy;
use snoopy_core::{InProcessCluster, SnoopyConfig};
use snoopy_enclave::wire::StoredObject;
use snoopy_telemetry::metrics::{self, names};
use std::sync::Arc;
use std::time::Duration;

const VLEN: usize = 24;
const NUM_OBJECTS: u64 = 64;

/// The counters whose per-run deltas must be reproducible.
const TRACKED: &[&str] = &[
    names::REPLAYS_TOTAL,
    names::DEGRADED_EPOCHS_TOTAL,
    names::UNAVAILABLE_TOTAL,
    names::FAULTS_INJECTED_TOTAL,
];

fn counter_snapshot() -> Vec<u64> {
    // FAULTS_INJECTED_TOTAL is labeled by kind; sum via the kinds the plan
    // emits. Unlabeled counters read directly.
    let reg = metrics::global();
    let mut out: Vec<u64> = TRACKED[..3].iter().map(|n| reg.counter(n, "").value()).collect();
    for kind in ["drop", "duplicate", "delay", "close"] {
        out.push(reg.counter_labeled(TRACKED[3], "", Some(("kind", kind))).value());
    }
    out
}

/// One full scripted run: a cluster with subORAM 1 dead for epochs 0..3,
/// two requests per epoch for six epochs. Partition faults are keyed purely
/// on epoch ids, and a dead subORAM *always* runs the deadline out, so the
/// replay/degrade counts this produces are timing-independent.
fn run_workload(seed: u64) -> (PlanSummary, Vec<u64>) {
    let plan = Arc::new(FaultPlan::new(FaultPlanConfig::new(seed).kill(1, 0, 3)));
    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let policy = EpochFaultPolicy::with_deadline(Duration::from_millis(30), 2);
    let objects: Vec<StoredObject> =
        (0..NUM_OBJECTS).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect();
    let before = counter_snapshot();
    let mut cluster = InProcessCluster::start_with_faults(cfg, objects, 31, policy, plan.clone());
    let client = cluster.client();
    for epoch in 0..6u64 {
        let rxs = [client.read_async(epoch), client.read_async(epoch + 7)];
        cluster.tick();
        for rx in rxs {
            let reply = rx.recv_timeout(Duration::from_secs(30)).expect("cluster hung");
            assert_eq!(reply.is_err(), epoch < 3, "epoch {epoch} on the wrong side of the heal");
        }
    }
    cluster.shutdown();
    let after = counter_snapshot();
    let deltas = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    (plan.summary(), deltas)
}

#[test]
fn same_seed_gives_identical_plan_summary_and_telemetry_deltas() {
    let seed = chaos_seed(0xC4A5_0004);
    eprintln!("CHAOS_SEED={seed}");
    let (summary_a, deltas_a) = run_workload(seed);
    let (summary_b, deltas_b) = run_workload(seed);
    assert_eq!(summary_a, summary_b, "plan summaries diverged across identical runs");
    assert_eq!(
        deltas_a, deltas_b,
        "telemetry deltas diverged across identical runs \
         (replays/degraded/unavailable/faults[drop,duplicate,delay,close])"
    );

    // And the run did exercise the recovery machinery, with the exact
    // counts the schedule implies: 3 dead epochs × 2 replay waves, 3
    // degraded epochs, 2 failed requests per degraded epoch.
    let [replays, degraded, unavailable, fault_drops, ..] = deltas_a[..] else {
        panic!("snapshot shape changed");
    };
    assert_eq!(replays, 6, "replay waves");
    assert_eq!(degraded, 3, "degraded epochs");
    assert_eq!(unavailable, 6, "failed client requests");
    // Partition drops: 3 epochs × (1 first send + 2 replays) = 9 batches.
    assert_eq!(fault_drops, 9, "injected drops");
    assert_eq!(summary_a.partition_drops, 9);
}
