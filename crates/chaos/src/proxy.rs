//! A fault-injecting TCP proxy for one subORAM.
//!
//! The balancer's manifest lists the proxy's address where the subORAM
//! would be; the proxy dials the real subORAM and pumps frames both ways,
//! consulting a [`FaultPlan`] for every sealed `BATCH` (balancer → subORAM)
//! and `RESP_BATCH` (subORAM → balancer) frame. Hellos and admin frames
//! always pass — the proxy attacks the data plane, not session setup.
//!
//! Fault semantics differ from the in-process plane on purpose. There,
//! faults are injected before sealing and the link never notices. Here the
//! proxy manipulates *sealed* frames on the wire, so a drop or duplicate
//! desynchronizes the AEAD link's strict in-order nonces: the receiver's
//! next `open` fails, the session dies, and the balancer re-dials and
//! replays the epoch over fresh keys — the identical recovery path a real
//! lossy network triggers. A `Close` severs both directions immediately.

use crate::plan::FaultPlan;
use snoopy_core::{FaultAction, FaultInjector};
use snoopy_net::frame::{read_frame, write_frame};
use snoopy_net::proto::{tag, Hello, Role};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One running proxy in front of one subORAM.
pub struct FaultProxy {
    local: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds an ephemeral local port fronting `upstream` (the real subORAM
    /// address) as subORAM `suboram` under `plan`.
    pub fn start(upstream: &str, suboram: usize, plan: Arc<FaultPlan>) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let upstream = upstream.to_string();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let upstream = upstream.clone();
                let plan = plan.clone();
                std::thread::spawn(move || {
                    let _ = session(client, &upstream, suboram, &plan);
                });
            }
        });
        Ok(FaultProxy { local, stop, accept_thread: Some(accept_thread) })
    }

    /// The address the balancer's manifest should list for this subORAM.
    pub fn addr(&self) -> &str {
        &self.local
    }

    /// Stops accepting new sessions. Live pump threads drain on their own
    /// when either endpoint closes (daemon shutdown tears them down).
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(&self.local);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.halt();
        }
    }
}

/// Pulls the epoch id out of a `BATCH`/`RESP_BATCH` body (its first 8
/// bytes — see [`snoopy_net::proto::encode_epoch_sealed`]).
fn frame_epoch(body: &[u8]) -> u64 {
    body.get(..8).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes).unwrap_or(0)
}

fn session(
    mut client: TcpStream,
    upstream: &str,
    suboram: usize,
    plan: &Arc<FaultPlan>,
) -> io::Result<()> {
    client.set_nodelay(true).ok();
    // The session hello names the dialing balancer; it always passes.
    let (t, hello_body) = read_frame(&mut client)?;
    if t != tag::HELLO {
        return Ok(());
    }
    let lb = match Hello::decode(&hello_body) {
        Some(h) if h.role == Role::LoadBalancer => h.index as usize,
        // Admin (and anything else) pumps transparently under lb 0.
        _ => 0,
    };
    let mut server = TcpStream::connect(upstream)?;
    server.set_nodelay(true).ok();
    write_frame(&mut server, tag::HELLO, &hello_body)?;

    let c2s = {
        let client = client.try_clone()?;
        let server = server.try_clone()?;
        let plan = plan.clone();
        std::thread::spawn(move || {
            pump(client, server, move |t, body| {
                if t == tag::BATCH {
                    plan.on_batch(lb, suboram, frame_epoch(body))
                } else {
                    FaultAction::Deliver
                }
            })
        })
    };
    let plan = plan.clone();
    pump(server, client, move |t, body| {
        if t == tag::RESP_BATCH {
            plan.on_response(lb, suboram, frame_epoch(body))
        } else {
            FaultAction::Deliver
        }
    });
    let _ = c2s.join();
    Ok(())
}

/// Copies frames `from` → `to`, applying `decide` to each; returns when
/// either side dies or a `Close` fault fires. Always severs both ends on
/// exit so the peer pump thread exits too.
fn pump(mut from: TcpStream, mut to: TcpStream, decide: impl Fn(u8, &[u8]) -> FaultAction) {
    while let Ok((t, body)) = read_frame(&mut from) {
        let deliver = |to: &mut TcpStream| write_frame(to, t, &body);
        let ok = match decide(t, &body) {
            FaultAction::Deliver => deliver(&mut to).is_ok(),
            FaultAction::Drop => true,
            FaultAction::Duplicate => deliver(&mut to).is_ok() && deliver(&mut to).is_ok(),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                deliver(&mut to).is_ok()
            }
            FaultAction::Close => false,
        };
        if !ok {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
