//! snoopy-chaos: the deterministic chaos harness.
//!
//! Clouds kill processes, drop links, and stall sockets; Snoopy's epoch
//! protocol claims to survive all of that (the fault-tolerance layer in
//! [`snoopy_core::transport`]). This crate turns that claim into repeatable
//! tests:
//!
//! * [`plan::FaultPlan`] — a **seeded** fault schedule. Every decision (drop
//!   / duplicate / delay / close / partition) is a pure function of the seed
//!   and the message's public coordinates `(direction, lb, suboram, epoch,
//!   attempt)`, so the same seed replays the same faults and two runs under
//!   the same plan produce identical retry/replay telemetry. Retried
//!   messages get a fresh `attempt` number — a retry is a *new* coin flip,
//!   not a rerun of the old one, so a lossy link eventually heals instead of
//!   deterministically eating every replay forever.
//! * For the **in-process plane**, a `FaultPlan` plugs straight into
//!   [`snoopy_core::InProcessCluster::start_with_faults`] (it implements
//!   [`snoopy_core::FaultInjector`]); faults are injected before sealing, so
//!   replays stay byte-identical re-seals.
//! * For the **TCP plane**, [`proxy::FaultProxy`] is a fault-injecting
//!   listener the balancer dials instead of the real subORAM: it pumps
//!   frames both ways and applies the plan to sealed `BATCH` /
//!   `RESP_BATCH` frames in flight. On the wire, a drop or duplicate
//!   desynchronizes the AEAD link's strict nonce sequence, which kills the
//!   session and forces the full re-dial + replay recovery path — exactly
//!   the machinery a real lossy network exercises.
//!
//! Everything the plan acts on is public (wire-observable message
//! coordinates), and every injected fault is counted through
//! [`snoopy_telemetry`] under `snoopy_faults_injected_total{kind=...}`.
//!
//! Chaos tests read the `CHAOS_SEED` environment variable (see
//! [`chaos_seed`]) and print the seed they ran with, so a failure names the
//! exact schedule needed to reproduce it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod proxy;

pub use plan::{DirectionFaults, FaultPlan, FaultPlanConfig, Partition, PlanSummary};
pub use proxy::FaultProxy;

/// The seed chaos tests run under: `CHAOS_SEED` from the environment, or
/// `default` if unset/unparsable. Tests print the value they used so a
/// failure is reproducible with `CHAOS_SEED=<seed> cargo test ...`.
pub fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}
