//! Seeded fault plans.
//!
//! A [`FaultPlan`] decides the fate of every batch and response message in a
//! deployment. Decisions are deterministic: a splitmix64 hash of the plan
//! seed and the message's public coordinates — direction, balancer, subORAM,
//! epoch, and a per-message *attempt* counter — picks the action. The
//! attempt counter is what makes recovery testable: the balancer's replay of
//! a dropped epoch-`e` batch is attempt 1 of `(Batch, lb, sub, e)` and rolls
//! a fresh coin, while rerunning the whole workload from scratch (fresh
//! plan, same seed) replays the identical sequence of coins.

use snoopy_core::{FaultAction, FaultInjector};
use snoopy_telemetry::{metrics, Public};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Message direction, the coarsest decision coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    Batch,
    Response,
}

/// Fault rates for one direction of traffic. Rates are per-mille (0..=1000)
/// and checked in order drop → duplicate → delay → close; the remainder
/// delivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectionFaults {
    /// Per-mille of messages silently discarded.
    pub drop_per_mille: u16,
    /// Per-mille of messages sent twice.
    pub duplicate_per_mille: u16,
    /// Per-mille of messages held for [`DirectionFaults::delay`].
    pub delay_per_mille: u16,
    /// Per-mille of messages that sever the connection instead of sending.
    pub close_per_mille: u16,
    /// How long a delayed message is held.
    pub delay: Duration,
}

impl DirectionFaults {
    /// No faults in this direction.
    pub fn none() -> DirectionFaults {
        DirectionFaults {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            close_per_mille: 0,
            delay: Duration::from_millis(2),
        }
    }

    fn total(&self) -> u32 {
        self.drop_per_mille as u32
            + self.duplicate_per_mille as u32
            + self.delay_per_mille as u32
            + self.close_per_mille as u32
    }
}

/// A link severed for a window of epochs. `None` coordinates wildcard: a
/// partition with `lb: None` cuts the subORAM off from *every* balancer —
/// which is also how a crashed subORAM looks from the network, so
/// [`FaultPlanConfig::kill`] is sugar for exactly this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Balancer side of the cut (`None` = all balancers).
    pub lb: Option<usize>,
    /// SubORAM side of the cut (`None` = all subORAMs).
    pub suboram: Option<usize>,
    /// First epoch the cut applies to.
    pub from_epoch: u64,
    /// First epoch *past* the cut (exclusive).
    pub until_epoch: u64,
}

impl Partition {
    fn covers(&self, lb: usize, sub: usize, epoch: u64) -> bool {
        self.lb.is_none_or(|l| l == lb)
            && self.suboram.is_none_or(|s| s == sub)
            && epoch >= self.from_epoch
            && epoch < self.until_epoch
    }
}

/// Everything a [`FaultPlan`] needs: the seed plus the schedule shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Seeds every decision; same seed → same faults.
    pub seed: u64,
    /// Randomized faults on balancer → subORAM batches.
    pub batch: DirectionFaults,
    /// Randomized faults on subORAM → balancer responses.
    pub response: DirectionFaults,
    /// Deterministic epoch-windowed link cuts (checked before the random
    /// faults; a partitioned message always drops).
    pub partitions: Vec<Partition>,
}

impl FaultPlanConfig {
    /// A quiet plan: no faults, just the seed.
    pub fn new(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig {
            seed,
            batch: DirectionFaults::none(),
            response: DirectionFaults::none(),
            partitions: Vec::new(),
        }
    }

    /// Sets the batch-direction fault rates.
    pub fn batch(mut self, faults: DirectionFaults) -> FaultPlanConfig {
        self.batch = faults;
        self
    }

    /// Sets the response-direction fault rates.
    pub fn response(mut self, faults: DirectionFaults) -> FaultPlanConfig {
        self.response = faults;
        self
    }

    /// Adds a partition.
    pub fn partition(mut self, partition: Partition) -> FaultPlanConfig {
        self.partitions.push(partition);
        self
    }

    /// Kills subORAM `suboram` at epoch `at_epoch` for `down_epochs` epochs:
    /// from the network's point of view a crashed process *is* a total
    /// partition, so this cuts it off from every balancer for the window.
    pub fn kill(self, suboram: usize, at_epoch: u64, down_epochs: u64) -> FaultPlanConfig {
        self.partition(Partition {
            lb: None,
            suboram: Some(suboram),
            from_epoch: at_epoch,
            until_epoch: at_epoch.saturating_add(down_epochs),
        })
    }

    /// Kills balancer `lb` for an epoch-id window: cuts it off from *every*
    /// subORAM, which is how a crashed (or fully partitioned) balancer looks
    /// to the data plane. Epoch coordinates are the ids stamped on batches —
    /// composite `wall * k + index` ids in a `k`-balancer deployment — so
    /// balancer `lb` only ever occupies the ids congruent to `lb` mod `k`,
    /// and a window meant to cover its next `n` batches must span `n * k`
    /// ids. (True process death on the TCP plane is SIGKILL in the harness;
    /// this sugar is the in-process/proxy approximation.)
    pub fn kill_balancer(self, lb: usize, at_epoch: u64, down_epochs: u64) -> FaultPlanConfig {
        self.partition(Partition {
            lb: Some(lb),
            suboram: None,
            from_epoch: at_epoch,
            until_epoch: at_epoch.saturating_add(down_epochs),
        })
    }
}

/// Counts of what a plan actually did, for run-to-run comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Total decisions taken.
    pub decisions: u64,
    /// Messages passed through untouched.
    pub delivered: u64,
    /// Randomized drops.
    pub drops: u64,
    /// Duplicated messages.
    pub duplicates: u64,
    /// Delayed messages.
    pub delays: u64,
    /// Connections severed.
    pub closes: u64,
    /// Drops forced by a [`Partition`] window.
    pub partition_drops: u64,
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} delivered={} drops={} duplicates={} delays={} closes={} partition_drops={}",
            self.decisions,
            self.delivered,
            self.drops,
            self.duplicates,
            self.delays,
            self.closes,
            self.partition_drops,
        )
    }
}

/// A live, seeded fault plan. Implements [`FaultInjector`] for the
/// in-process plane; [`crate::FaultProxy`] applies the same plan on TCP.
pub struct FaultPlan {
    config: FaultPlanConfig,
    /// Attempt counters per (direction, lb, sub, epoch): a retried message
    /// is a fresh decision, not a replay of the old one.
    attempts: Mutex<HashMap<(u8, usize, usize, u64), u64>>,
    decisions: AtomicU64,
    delivered: AtomicU64,
    drops: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
    closes: AtomicU64,
    partition_drops: AtomicU64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Builds the plan.
    pub fn new(config: FaultPlanConfig) -> FaultPlan {
        FaultPlan {
            config,
            attempts: Mutex::new(HashMap::new()),
            decisions: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            partition_drops: AtomicU64::new(0),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// Snapshot of everything the plan has done so far.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            decisions: self.decisions.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            partition_drops: self.partition_drops.load(Ordering::Relaxed),
        }
    }

    fn count(&self, kind: &'static str) {
        metrics::global()
            .counter_labeled(
                metrics::names::FAULTS_INJECTED_TOTAL,
                "faults injected by a chaos FaultPlan",
                Some(("kind", kind)),
            )
            .inc(Public::wire_observable(()));
    }

    fn decide(&self, dir: Dir, lb: usize, sub: usize, epoch: u64) -> FaultAction {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if self.config.partitions.iter().any(|p| p.covers(lb, sub, epoch)) {
            self.partition_drops.fetch_add(1, Ordering::Relaxed);
            self.count("drop");
            return FaultAction::Drop;
        }
        let dir_code = match dir {
            Dir::Batch => 0u8,
            Dir::Response => 1u8,
        };
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap();
            let slot = attempts.entry((dir_code, lb, sub, epoch)).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let faults = match dir {
            Dir::Batch => &self.config.batch,
            Dir::Response => &self.config.response,
        };
        if faults.total() == 0 {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Deliver;
        }
        let mut h = splitmix64(self.config.seed ^ splitmix64(dir_code as u64 + 1));
        for part in [lb as u64, sub as u64, epoch, attempt] {
            h = splitmix64(h ^ part);
        }
        let roll = (h % 1000) as u32;
        let mut edge = faults.drop_per_mille as u32;
        if roll < edge {
            self.drops.fetch_add(1, Ordering::Relaxed);
            self.count("drop");
            return FaultAction::Drop;
        }
        edge += faults.duplicate_per_mille as u32;
        if roll < edge {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            self.count("duplicate");
            return FaultAction::Duplicate;
        }
        edge += faults.delay_per_mille as u32;
        if roll < edge {
            self.delays.fetch_add(1, Ordering::Relaxed);
            self.count("delay");
            return FaultAction::Delay(faults.delay);
        }
        edge += faults.close_per_mille as u32;
        if roll < edge {
            self.closes.fetch_add(1, Ordering::Relaxed);
            self.count("close");
            return FaultAction::Close;
        }
        self.delivered.fetch_add(1, Ordering::Relaxed);
        FaultAction::Deliver
    }
}

impl FaultInjector for FaultPlan {
    fn on_batch(&self, lb: usize, suboram: usize, epoch: u64) -> FaultAction {
        self.decide(Dir::Batch, lb, suboram, epoch)
    }

    fn on_response(&self, lb: usize, suboram: usize, epoch: u64) -> FaultAction {
        self.decide(Dir::Response, lb, suboram, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultPlanConfig {
        FaultPlanConfig::new(0xC4A05)
            .batch(DirectionFaults {
                drop_per_mille: 200,
                duplicate_per_mille: 100,
                delay_per_mille: 100,
                close_per_mille: 50,
                delay: Duration::from_millis(1),
            })
            .response(DirectionFaults { drop_per_mille: 300, ..DirectionFaults::none() })
    }

    #[test]
    fn same_seed_same_decisions_and_summary() {
        let a = FaultPlan::new(lossy());
        let b = FaultPlan::new(lossy());
        for epoch in 0..200u64 {
            for lb in 0..2 {
                for sub in 0..3 {
                    assert_eq!(a.on_batch(lb, sub, epoch), b.on_batch(lb, sub, epoch));
                    assert_eq!(a.on_response(lb, sub, epoch), b.on_response(lb, sub, epoch));
                }
            }
        }
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.summary().decisions, 2 * 200 * 2 * 3);
        // With these rates the plan must actually be doing things.
        let s = a.summary();
        assert!(s.drops > 0 && s.duplicates > 0 && s.delays > 0 && s.closes > 0);
        assert!(s.delivered > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(lossy());
        let b = FaultPlan::new(FaultPlanConfig { seed: 0xBEEF, ..lossy() });
        let mut same = 0;
        for epoch in 0..300u64 {
            if a.on_batch(0, 0, epoch) == b.on_batch(0, 0, epoch) {
                same += 1;
            }
        }
        assert!(same < 300, "independent seeds should not agree on every decision");
    }

    #[test]
    fn retries_roll_fresh_coins() {
        // The same (direction, lb, sub, epoch) tuple must not be condemned
        // to one fate forever: attempt N and attempt N+1 are independent
        // rolls, so over many attempts a 50% drop rate cannot drop them all.
        let cfg = FaultPlanConfig::new(7)
            .batch(DirectionFaults { drop_per_mille: 500, ..DirectionFaults::none() });
        let plan = FaultPlan::new(cfg);
        let actions: Vec<FaultAction> = (0..64).map(|_| plan.on_batch(0, 0, 42)).collect();
        assert!(actions.contains(&FaultAction::Deliver), "a retry must eventually land");
        assert!(actions.contains(&FaultAction::Drop), "rate 500‰ must drop sometimes");
    }

    #[test]
    fn partitions_drop_in_window_and_heal_after() {
        let plan = FaultPlan::new(FaultPlanConfig::new(1).kill(1, 5, 3));
        for epoch in 0..10u64 {
            let want =
                if (5..8).contains(&epoch) { FaultAction::Drop } else { FaultAction::Deliver };
            assert_eq!(plan.on_batch(0, 1, epoch), want, "epoch {epoch}");
            // Other subORAMs are untouched by the kill.
            assert_eq!(plan.on_batch(0, 0, epoch), FaultAction::Deliver);
        }
        let s = plan.summary();
        assert_eq!(s.partition_drops, 3);
        assert_eq!(s.drops, 0, "partition drops are counted separately");
    }

    #[test]
    fn kill_balancer_cuts_one_balancer_from_every_suboram() {
        // Composite ids in a 2-balancer world: lb 1 owns the odd ids. Cut
        // its batches for ids [3, 9); lb 0's even ids are untouched.
        let plan = FaultPlan::new(FaultPlanConfig::new(2).kill_balancer(1, 3, 6));
        for epoch in 0..12u64 {
            for sub in 0..2 {
                let lb = (epoch % 2) as usize;
                let want = if lb == 1 && (3..9).contains(&epoch) {
                    FaultAction::Drop
                } else {
                    FaultAction::Deliver
                };
                assert_eq!(plan.on_batch(lb, sub, epoch), want, "epoch {epoch} sub {sub}");
            }
        }
        assert_eq!(plan.summary().partition_drops, 3 * 2, "ids 3,5,7 × 2 subORAMs");
    }

    #[test]
    fn quiet_plan_delivers_everything() {
        let plan = FaultPlan::new(FaultPlanConfig::new(9));
        for epoch in 0..50u64 {
            assert_eq!(plan.on_batch(0, 0, epoch), FaultAction::Deliver);
            assert_eq!(plan.on_response(0, 0, epoch), FaultAction::Deliver);
        }
        let s = plan.summary();
        assert_eq!(s.delivered, 100);
        assert_eq!(s.decisions, 100);
        assert_eq!(s, PlanSummary { decisions: 100, delivered: 100, ..PlanSummary::default() });
    }
}
