//! The Snoopy planner (paper §6).
//!
//! Given a data size `N`, a minimum throughput `X_sys`, and a maximum average
//! latency `L_sys`, output the configuration (number of load balancers `B`,
//! number of subORAMs `S`) minimizing monthly cost, using the paper's three
//! relations:
//!
//! * **Equation (1)** — sustainability: with pipelined processing, the epoch
//!   length must cover the slower stage,
//!   `T ≥ max( L_LB(X·T/B, S),  B · L_S(f(X·T/B, S), N/S) )`;
//! * **Equation (2)** — latency: a request waits on average `T/2` and each
//!   pipeline stage is bounded by `T`, so `L_sys ≤ 5T/2`;
//! * **Equation (3)** — cost: `C_sys = B·C_LB + S·C_S`.
//!
//! Service times come from the same calibrated [`CostModel`] the cluster
//! simulator uses, so a plan can be validated by simulation
//! ([`Plan::validate`]). Like the paper's planner, this is a heuristic
//! starting point, not a guarantee (§6: "our model makes simplifying
//! assumptions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snoopy_netsim::cluster::{ClusterParams, ClusterSim, SubKind};
use snoopy_netsim::costmodel::CostModel;

/// Monthly machine prices (Azure DCsv2-series, as in the paper's Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prices {
    /// $/month for a load-balancer machine.
    pub lb_per_month: f64,
    /// $/month for a subORAM machine.
    pub suboram_per_month: f64,
}

impl Default for Prices {
    fn default() -> Self {
        // DC4s_v2 ≈ $0.478/hour ≈ $349/month for either role.
        Prices { lb_per_month: 349.0, suboram_per_month: 349.0 }
    }
}

/// Performance requirements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Requirements {
    /// Minimum sustained throughput (requests/second).
    pub min_throughput_rps: f64,
    /// Maximum average latency (milliseconds).
    pub max_latency_ms: f64,
    /// Stored objects.
    pub num_objects: u64,
}

/// A planned configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan {
    /// Load balancer count (`B` in the paper's §6 notation).
    pub num_lbs: usize,
    /// SubORAM count (`S`).
    pub num_suborams: usize,
    /// Chosen epoch length (ns).
    pub epoch_ns: u64,
    /// Monthly cost under the given prices.
    pub cost_per_month: f64,
    /// Modeled per-epoch request volume at the required throughput.
    pub requests_per_epoch: u64,
}

impl Plan {
    /// Total machines (the paper's x-axis).
    pub fn machines(&self) -> usize {
        self.num_lbs + self.num_suborams
    }

    /// Cross-checks the plan against the discrete-event simulator: runs the
    /// required load and reports `(throughput, mean latency ms)`.
    pub fn validate(&self, req: &Requirements, model: &CostModel, seed: u64) -> (f64, f64) {
        let sim = ClusterSim::new(
            ClusterParams {
                num_lbs: self.num_lbs,
                num_suborams: self.num_suborams,
                num_objects: req.num_objects,
                epoch_ns: self.epoch_ns,
                duration_ns: 60 * self.epoch_ns.max(100_000_000),
                warmup_ns: 10 * self.epoch_ns.max(100_000_000),
                sub_kind: SubKind::SnoopyScan,
            },
            model.clone(),
        );
        let rep = sim.run_poisson(req.min_throughput_rps, seed);
        (rep.throughput_rps, rep.mean_latency_ms)
    }
}

/// Checks Equations (1) and (2) for a candidate `(B, S, T)` at the required
/// throughput. Returns true if the configuration sustains the load.
pub fn feasible(
    req: &Requirements,
    model: &CostModel,
    num_lbs: usize,
    num_suborams: usize,
    epoch_ns: u64,
) -> bool {
    let t = epoch_ns as f64;
    // Equation (2): L_sys <= 5T/2  ⇔  T <= 2·L_sys/5.
    if t > req.max_latency_ms * 1e6 * 2.0 / 5.0 {
        return false;
    }
    // Requests per epoch per balancer at the target throughput.
    let r_per_lb = (req.min_throughput_rps * t / 1e9 / num_lbs as f64).ceil() as u64;
    if r_per_lb == 0 {
        return true;
    }
    let s = num_suborams as u64;
    let b = model.batch_size(r_per_lb, s);
    let partition = req.num_objects / s;
    // Equation (1): the balancer pipelines (make + match both run on it);
    // each subORAM serves one batch per balancer per epoch.
    let lb_time = model.lb_make_batch_ns(r_per_lb, s) + model.lb_match_ns(r_per_lb, s);
    let sub_time = num_lbs as f64 * model.suboram_batch_ns(b, partition);
    t >= lb_time.max(sub_time)
}

/// The smallest subORAM fleet that sustains the requirements with the
/// deployment's balancer count and epoch length fixed — the elastic-reshard
/// question: machines are already provisioned, the epoch protocol pins `B`
/// and `T`, and the only free axis is how many subORAMs are active. Returns
/// `None` if even `max_suborams` cannot carry the load (the operator must
/// provision more, not reshard).
///
/// Feasibility is monotone in `S` for a fixed `(B, T)` in the paper's model
/// (Equation (1): both the balancer's `f(R, S)` batch work and the per-node
/// partition shrink as `S` grows), so the first feasible `S` is the answer.
pub fn recommend_suborams(
    req: &Requirements,
    model: &CostModel,
    num_lbs: usize,
    max_suborams: usize,
    epoch_ns: u64,
) -> Option<usize> {
    (1..=max_suborams).find(|&s| feasible(req, model, num_lbs, s, epoch_ns))
}

/// Searches for the cheapest feasible configuration (Equation (3) objective).
/// Returns `None` if nothing within `max_machines` works.
pub fn plan(
    req: &Requirements,
    model: &CostModel,
    prices: &Prices,
    max_machines: usize,
) -> Option<Plan> {
    let t_max = (req.max_latency_ms * 1e6 * 2.0 / 5.0) as u64;
    if t_max == 0 {
        return None;
    }
    // Epoch grid: the largest allowed epoch is most efficient (bigger batches
    // amortize better), but a saturated balancer may prefer shorter epochs;
    // try a small grid.
    let t_grid = [t_max, t_max * 3 / 4, t_max / 2, t_max / 4, t_max / 8];
    let mut best: Option<Plan> = None;
    for s in 1..max_machines {
        for l in 1..=(max_machines - s) {
            let cost = l as f64 * prices.lb_per_month + s as f64 * prices.suboram_per_month;
            if let Some(b) = &best {
                if cost >= b.cost_per_month {
                    continue;
                }
            }
            for &t in &t_grid {
                if t == 0 {
                    continue;
                }
                if feasible(req, model, l, s, t) {
                    let r_per_epoch = (req.min_throughput_rps * t as f64 / 1e9).ceil() as u64;
                    best = Some(Plan {
                        num_lbs: l,
                        num_suborams: s,
                        epoch_ns: t,
                        cost_per_month: cost,
                        requests_per_epoch: r_per_epoch,
                    });
                    break;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tput: f64, lat_ms: f64, n: u64) -> Requirements {
        Requirements { min_throughput_rps: tput, max_latency_ms: lat_ms, num_objects: n }
    }

    #[test]
    fn finds_a_small_config_for_light_load() {
        let m = CostModel::paper_calibrated();
        let p = plan(&req(1000.0, 1000.0, 10_000), &m, &Prices::default(), 20).unwrap();
        assert!(p.machines() <= 4, "light load should not need many machines: {p:?}");
    }

    #[test]
    fn higher_throughput_costs_more() {
        let m = CostModel::paper_calibrated();
        let prices = Prices::default();
        let lo = plan(&req(5_000.0, 1000.0, 1_000_000), &m, &prices, 40).unwrap();
        let hi = plan(&req(60_000.0, 1000.0, 1_000_000), &m, &prices, 40).unwrap();
        assert!(hi.cost_per_month > lo.cost_per_month, "{lo:?} vs {hi:?}");
    }

    #[test]
    fn larger_data_needs_more_suborams() {
        // Fig. 14a: bigger data sizes favor a higher subORAM:balancer ratio.
        let m = CostModel::paper_calibrated();
        let prices = Prices::default();
        let small = plan(&req(40_000.0, 1000.0, 10_000), &m, &prices, 40).unwrap();
        let large = plan(&req(40_000.0, 1000.0, 1_000_000), &m, &prices, 40).unwrap();
        assert!(large.num_suborams > small.num_suborams, "small: {small:?}, large: {large:?}");
    }

    #[test]
    fn infeasible_returns_none() {
        let m = CostModel::paper_calibrated();
        // 1 µs latency is impossible.
        assert!(plan(&req(1000.0, 0.001, 1_000_000), &m, &Prices::default(), 10).is_none());
    }

    #[test]
    fn tighter_latency_not_cheaper() {
        let m = CostModel::paper_calibrated();
        let prices = Prices::default();
        let loose = plan(&req(30_000.0, 1000.0, 2_000_000), &m, &prices, 40).unwrap();
        let tight = plan(&req(30_000.0, 300.0, 2_000_000), &m, &prices, 40).unwrap();
        assert!(tight.cost_per_month >= loose.cost_per_month, "{loose:?} vs {tight:?}");
    }

    #[test]
    fn plan_validates_against_simulator() {
        let m = CostModel::paper_calibrated();
        let r = req(20_000.0, 1000.0, 2_000_000);
        let p = plan(&r, &m, &Prices::default(), 40).unwrap();
        let (tput, lat) = p.validate(&r, &m, 7);
        // The simulator should confirm the offered load completes with
        // latency within the SLO (with modest slack for queueing the
        // closed-form model ignores).
        assert!(tput >= r.min_throughput_rps * 0.85, "sim tput {tput}");
        assert!(lat <= r.max_latency_ms * 1.5, "sim latency {lat} ms, plan {p:?}");
    }

    #[test]
    fn enclave_threads_never_need_more_machines() {
        // §8.4 / Fig. 13: intra-enclave parallelism raises per-machine
        // capacity, so a thread-aware plan is never larger or costlier than
        // the serial one for the same requirements.
        let serial = CostModel::paper_calibrated();
        let threaded = CostModel::paper_calibrated().with_threads(4, 4);
        let prices = Prices::default();
        for r in [req(40_000.0, 500.0, 2_000_000), req(60_000.0, 1000.0, 1_000_000)] {
            let p1 = plan(&r, &serial, &prices, 40).unwrap();
            let p4 = plan(&r, &threaded, &prices, 40).unwrap();
            assert!(
                p4.machines() <= p1.machines(),
                "threads should not increase machine count: {p1:?} vs {p4:?}"
            );
            assert!(p4.cost_per_month <= p1.cost_per_month, "{p1:?} vs {p4:?}");
        }
        // And anything feasible serially stays feasible with threads.
        let r = req(50_000.0, 500.0, 2_000_000);
        let t = (r.max_latency_ms * 1e6 * 2.0 / 5.0) as u64;
        for (l, s) in [(2usize, 8usize), (3, 10), (4, 12)] {
            if feasible(&r, &serial, l, s, t) {
                assert!(feasible(&r, &threaded, l, s, t), "({l},{s}) regressed with threads");
            }
        }
    }

    #[test]
    fn recommend_suborams_scales_with_load_and_refuses_the_impossible() {
        let m = CostModel::paper_calibrated();
        let t = (1000.0 * 1e6 * 2.0 / 5.0) as u64;
        let light = recommend_suborams(&req(1_000.0, 1000.0, 1_000_000), &m, 2, 16, t).unwrap();
        let heavy = recommend_suborams(&req(60_000.0, 1000.0, 1_000_000), &m, 2, 16, t).unwrap();
        assert!(heavy >= light, "more load cannot need fewer subORAMs: {light} vs {heavy}");
        // The recommendation is the *smallest* feasible fleet: one node
        // fewer must not sustain the load.
        assert!(feasible(&req(60_000.0, 1000.0, 1_000_000), &m, 2, heavy, t));
        if heavy > 1 {
            assert!(!feasible(&req(60_000.0, 1000.0, 1_000_000), &m, 2, heavy - 1, t));
        }
        // A 1 µs latency budget is impossible at any fleet size.
        assert!(recommend_suborams(&req(1_000.0, 0.001, 1_000_000), &m, 2, 16, 400).is_none());
    }

    #[test]
    fn feasibility_monotone_in_machines() {
        let m = CostModel::paper_calibrated();
        let r = req(50_000.0, 500.0, 2_000_000);
        let t = (r.max_latency_ms * 1e6 * 2.0 / 5.0) as u64;
        // If (l, s) works then (l+1, s+1) should too (more capacity).
        for (l, s) in [(2usize, 8usize), (3, 10), (4, 12)] {
            if feasible(&r, &m, l, s, t) {
                assert!(feasible(&r, &m, l + 1, s + 1, t), "({l},{s}) ok but +1 not");
            }
        }
    }
}
