//! Single-tier oblivious hash table — the ablation baseline the paper argues
//! *against* in §5: with only one tier, every bucket must be sized for
//! cryptographically negligible overflow directly (Theorem 3), which makes
//! buckets much larger and lookups correspondingly slower. Benches compare
//! its construction and lookup cost against [`crate::OHashTable`].

use crate::table::OHashError;
use snoopy_binning::batch_size;
use snoopy_crypto::{Key256, SipHash24};
use snoopy_enclave::wire::{Request, FILLER_BASE};
use snoopy_obliv::compact::ocompact;
use snoopy_obliv::ct::{ct_eq_u64, ct_lt_u64, Choice, Cmov};
use snoopy_obliv::impl_cmov_struct;
use snoopy_obliv::sort::osort_by;

/// Slot in the single-tier table.
#[derive(Clone, Debug)]
pub struct STSlot {
    key: u64,
    real_flag: u64,
    /// The payload request.
    pub req: Request,
}

impl_cmov_struct!(STSlot { key, real_flag, req });

/// A single-tier oblivious hash table with Theorem-3-sized buckets.
pub struct SingleTierTable {
    m: usize,
    z: usize,
    n: usize,
    h: SipHash24,
    slots: Vec<STSlot>,
}

impl SingleTierTable {
    /// Chooses the bucket count minimizing bucket size under a memory cap of
    /// `8n` slots, then sizes buckets with the Theorem 3 bound.
    pub fn derive_params(n: usize, lambda: u32) -> (usize, usize) {
        let mut best = (1usize, n);
        let mut m = 1usize;
        while m <= (8 * n).next_power_of_two() {
            let z = batch_size(n as u64, m as u64, lambda) as usize;
            if m * z <= 8 * n && z < best.1 {
                best = (m, z);
            }
            m *= 2;
        }
        best
    }

    /// Builds the table (same oblivious placement as the two-tier table's
    /// tier 1, but overflow is a hard, negligible-probability failure).
    pub fn construct(
        batch: Vec<Request>,
        key: &Key256,
        lambda: u32,
    ) -> Result<SingleTierTable, OHashError> {
        assert!(!batch.is_empty());
        let n = batch.len();
        let value_len = batch[0].value.len();
        let (m, z) = Self::derive_params(n, lambda);
        let h = SipHash24::from_key256(&key.derive(b"single-tier"));

        let mut slots: Vec<STSlot> = Vec::with_capacity(n + m * z);
        for (i, req) in batch.into_iter().enumerate() {
            let b = h.bin_u64(req.id, m) as u64;
            slots.push(STSlot { key: (b << 33) | i as u64, real_flag: 1, req });
        }
        let mut arrival = n as u64;
        for b in 0..m as u64 {
            for _ in 0..z {
                slots.push(STSlot {
                    key: (b << 33) | (1 << 32) | arrival,
                    real_flag: 0,
                    req: Request {
                        id: FILLER_BASE + arrival,
                        kind: 0,
                        value: vec![0u8; value_len],
                        client: 0,
                        seq: 0,
                        permit: 1,
                    },
                });
                arrival += 1;
            }
        }
        osort_by(&mut slots, &|a: &STSlot, b: &STSlot| ct_lt_u64(b.key, a.key));

        let mut prev_bucket = u64::MAX;
        let mut pos = 0u64;
        let mut keep = Vec::with_capacity(slots.len());
        let mut overflow = Choice::FALSE;
        for s in slots.iter() {
            let b = s.key >> 33;
            let same = ct_eq_u64(b, prev_bucket);
            let incremented = pos.wrapping_add(1);
            let mut new_pos = 0u64;
            new_pos.cmov(&incremented, same);
            pos = new_pos;
            prev_bucket = b;
            let placed = ct_lt_u64(pos, z as u64);
            keep.push(placed);
            overflow = overflow.or(ct_eq_u64(s.real_flag, 1).and(placed.not()));
        }
        let mut keep_bits = keep;
        ocompact(&mut slots, &mut keep_bits);
        slots.truncate(m * z);
        if overflow.declassify() {
            return Err(OHashError::TableOverflow);
        }
        Ok(SingleTierTable { m, z, n, h, slots })
    }

    /// The single bucket `id` can live in.
    pub fn bucket_mut(&mut self, id: u64) -> &mut [STSlot] {
        let b = self.h.bin_u64(id, self.m);
        &mut self.slots[b * self.z..(b + 1) * self.z]
    }

    /// Bucket size (per-lookup scan cost).
    pub fn bucket_size(&self) -> usize {
        self.z
    }

    /// Extracts the batch entries.
    pub fn into_batch_requests(self) -> Vec<Request> {
        let n = self.n;
        let mut slots = self.slots;
        let mut keep: Vec<Choice> = slots.iter().map(|s| ct_eq_u64(s.real_flag, 1)).collect();
        ocompact(&mut slots, &mut keep);
        slots.truncate(n);
        slots.into_iter().map(|s| s.req).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableParams;

    const VLEN: usize = 16;

    fn batch_of(ids: &[u64]) -> Vec<Request> {
        ids.iter().enumerate().map(|(i, &id)| Request::read(id, VLEN, 0, i as u64)).collect()
    }

    #[test]
    fn constructs_and_finds_all_ids() {
        let ids: Vec<u64> = (0..500u64).map(|i| i * 11 + 5).collect();
        let mut t = SingleTierTable::construct(batch_of(&ids), &Key256([7u8; 32]), 128).unwrap();
        for &id in &ids {
            let found = t.bucket_mut(id).iter().filter(|s| s.req.id == id).count();
            assert_eq!(found, 1, "id {id}");
        }
        let out = t.into_batch_requests();
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn single_tier_buckets_larger_than_two_tier_lookup() {
        // The §5 argument: the two-tier lookup cost (z1+z2) beats the
        // single-tier bucket size at realistic batch sizes.
        for n in [1usize << 12, 1 << 14] {
            let (_, z_single) = SingleTierTable::derive_params(n, 128);
            let two = TableParams::derive(n, 128);
            assert!(
                two.lookup_cost() <= z_single,
                "n={n}: two-tier {} vs single {z_single}",
                two.lookup_cost()
            );
        }
    }

    #[test]
    fn params_bucket_holds_mean_load() {
        let (m, z) = SingleTierTable::derive_params(4096, 128);
        assert!(m * z >= 4096);
        assert!((z as f64) >= 4096.0 / m as f64);
    }
}
