//! Bucket-size derivation for the two-tier table.
//!
//! Given `n` batch entries and security parameter `λ`, choose:
//!
//! * `m1` tier-1 buckets of size `z1` — small buckets, *non*-negligible
//!   per-bucket overflow (overflow spills to tier 2);
//! * `n2_cap` — a cap on total tier-1 overflow such that
//!   `P[overflow > n2_cap] ≤ 2^-λ`. Overflow indicators for balls-into-bins
//!   are negatively associated, so the Chernoff bound applies with mean
//!   `n · q` where `q = P[Binomial(n−1, 1/m1) ≥ z1]` (the probability a given
//!   item lands in a bucket already holding `z1` others);
//! * `m2` tier-2 buckets of size `z2`, sized with the paper's Theorem 3 bound
//!   so that tier-2 overflow is itself negligible.
//!
//! `z1` and `m2` are chosen by numeric search minimizing the per-lookup scan
//! cost `z1 + z2`, with a memory cap on the tier-2 table.

use snoopy_binning::{batch_size, binomial_tail, chernoff_ln_tail};

/// Derived two-tier table parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableParams {
    /// Batch size the table is built for.
    pub n: usize,
    /// Tier-1 bucket count.
    pub m1: usize,
    /// Tier-1 bucket size.
    pub z1: usize,
    /// Public cap on tier-1 overflow (tier-2 input size).
    pub n2_cap: usize,
    /// Tier-2 bucket count.
    pub m2: usize,
    /// Tier-2 bucket size.
    pub z2: usize,
    /// Security parameter.
    pub lambda: u32,
}

impl TableParams {
    /// Total entries in the table (tier 1 + tier 2).
    pub fn total_slots(&self) -> usize {
        self.m1 * self.z1 + self.m2 * self.z2
    }

    /// Entries scanned per lookup.
    pub fn lookup_cost(&self) -> usize {
        self.z1 + self.z2
    }

    /// Derives parameters for a batch of `n` distinct entries at security
    /// level `lambda`. Panics if `n == 0`.
    pub fn derive(n: usize, lambda: u32) -> TableParams {
        assert!(n > 0, "cannot build a table for an empty batch");
        // Tiny batches: a single tier-2-style table (one bucket holding
        // everything) is both cheapest and trivially safe.
        if n <= 32 {
            return TableParams { n, m1: 1, z1: n, n2_cap: 1, m2: 1, z2: 1, lambda };
        }

        let mut best: Option<TableParams> = None;
        for z1 in [4usize, 6, 8, 12, 16, 24, 32] {
            if z1 >= n {
                continue;
            }
            // Load factor 1/2: expected bucket load = z1/2.
            let m1 = (2 * n).div_ceil(z1).next_power_of_two();
            let n2_cap = overflow_cap(n, m1, z1, lambda);
            if n2_cap == 0 || n2_cap >= n {
                continue;
            }
            // Search tier-2 bucket counts; cap tier-2 memory at 8n slots.
            let mut m2 = 1usize;
            while m2 <= (8 * n).next_power_of_two() {
                let z2 = batch_size(n2_cap as u64, m2 as u64, lambda) as usize;
                if m2 * z2 <= 8 * n {
                    let cand = TableParams { n, m1, z1, n2_cap, m2, z2, lambda };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            let (c, bc) = (cand.lookup_cost(), b.lookup_cost());
                            c < bc || (c == bc && cand.total_slots() < b.total_slots())
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                m2 *= 2;
            }
        }
        best.expect("parameter search must succeed for n > 32")
    }
}

/// Smallest cap `k` with `P[total tier-1 overflow > k] ≤ 2^-λ`, via the
/// Chernoff certificate over mean `n·q`. Returns 0 if no cap below `n` works.
fn overflow_cap(n: usize, m1: usize, z1: usize, lambda: u32) -> usize {
    let q = binomial_tail(n as u64 - 1, 1.0 / m1 as f64, z1 as u64);
    let mu = n as f64 * q;
    let threshold = -(lambda as f64) * std::f64::consts::LN_2;
    // Exponential-then-binary search for the smallest adequate k.
    let ok = |k: usize| chernoff_ln_tail(mu, k as f64) <= threshold;
    let mut hi = 1usize;
    while hi < n && !ok(hi) {
        hi *= 2;
    }
    if !ok(hi) {
        return 0;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_for_paper_batch_size() {
        let p = TableParams::derive(4096, 128);
        assert_eq!(p.n, 4096);
        assert!(p.m1.is_power_of_two());
        assert!(p.z1 * p.m1 >= p.n, "tier 1 must be able to hold the bulk");
        assert!(p.n2_cap < p.n, "overflow cap must be a small fraction of n");
        assert!(p.z2 > 0 && p.m2 > 0);
        // The whole point: lookups scan far fewer entries than the batch.
        assert!(p.lookup_cost() < p.n / 10, "lookup cost {}", p.lookup_cost());
    }

    #[test]
    fn two_tier_beats_single_tier_lookup_cost() {
        // Single-tier comparison: buckets sized for negligible overflow
        // directly. Minimize over bucket counts as a fair baseline.
        for n in [1 << 12, 1 << 14, 1 << 16] {
            let p = TableParams::derive(n, 128);
            let mut single_best = usize::MAX;
            let mut m = 1usize;
            while m <= 4 * n {
                let z = batch_size(n as u64, m as u64, 128) as usize;
                if m * z <= 8 * n {
                    single_best = single_best.min(z);
                }
                m *= 2;
            }
            assert!(
                p.lookup_cost() <= single_best,
                "n={n}: two-tier {} vs single-tier {}",
                p.lookup_cost(),
                single_best
            );
        }
    }

    #[test]
    fn small_batches_degenerate_to_one_bucket() {
        for n in [1usize, 2, 16, 32] {
            let p = TableParams::derive(n, 128);
            assert_eq!(p.m1, 1);
            assert_eq!(p.z1, n);
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn zero_panics() {
        TableParams::derive(0, 128);
    }

    #[test]
    fn overflow_cap_monotone_in_lambda() {
        let c80 = overflow_cap(4096, 1024, 8, 80);
        let c128 = overflow_cap(4096, 1024, 8, 128);
        assert!(c128 >= c80);
        assert!(c80 > 0);
    }

    #[test]
    fn certificate_holds_at_derived_params() {
        let p = TableParams::derive(4096, 128);
        let q = binomial_tail(p.n as u64 - 1, 1.0 / p.m1 as f64, p.z1 as u64);
        let lnp = chernoff_ln_tail(p.n as f64 * q, p.n2_cap as f64);
        assert!(lnp <= -(128.0 * std::f64::consts::LN_2) + 1e-6, "ln p = {lnp}");
    }

    #[test]
    fn total_slots_and_lookup_cost_consistent() {
        let p = TableParams::derive(1000, 128);
        assert_eq!(p.total_slots(), p.m1 * p.z1 + p.m2 * p.z2);
        assert_eq!(p.lookup_cost(), p.z1 + p.z2);
    }
}
