//! The two-tier oblivious hash table at the heart of Snoopy's subORAM (§5).
//!
//! A subORAM processes a whole batch with one linear scan over its stored
//! objects; for each object it must find "the request for this object, if
//! any" without revealing whether one exists. The batch is therefore loaded
//! into a hash table whose *construction* access pattern hides the mapping of
//! requests to buckets, and whose *lookup* access pattern (hash the id, scan
//! the whole bucket) is safe as long as each id is looked up at most once
//! under a fresh per-batch key.
//!
//! Snoopy rejects Signal's `O(n²)` construction and single-tier tables
//! (negligible-overflow buckets must be large), adopting Chan et al.'s
//! **two-tier** scheme: a first tier of many small buckets absorbs the bulk;
//! the (padded, secret-count) overflow goes to a second tier whose buckets
//! are sized for cryptographically negligible failure. Construction is a
//! handful of oblivious sorts + scans + compactions.
//!
//! Parameter derivation ([`params::TableParams::derive`]) is from first
//! principles: exact binomial tails for the tier-1 overflow rate, a Chernoff
//! certificate (valid under negative association of balls-into-bins) for the
//! total-overflow cap, and the paper's own Theorem 3 bound for the tier-2
//! buckets. The derivation is more conservative than Chan et al.'s analysis
//! (which this paper does not restate), so our bucket-size advantage over a
//! single-tier table is real but smaller than the paper's quoted ~10×; the
//! structure and obliviousness are faithful. [`single::SingleTierTable`]
//! exists as the ablation baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;
pub mod single;
pub mod table;

pub use params::TableParams;
pub use table::{OHashError, OHashTable};
