//! Oblivious construction and lookup for the two-tier table.
//!
//! Construction (all fixed-pattern: sorts, full scans, compactions):
//!
//! 1. **Duplicate check** — the subORAM protocol returns ⊥ on a batch with
//!    duplicate ids (paper Fig. 19 lines 2-4). We sort a copy of the ids and
//!    compare neighbours obliviously, declassifying only the single bit.
//! 2. **Tier-1 placement** — tag each entry with its `h1` bucket, append `z1`
//!    fillers per bucket, bitonic-sort by (bucket, real-before-filler,
//!    arrival), then a position scan marks the first `z1` entries of each
//!    bucket as *placed* and overflowing real entries as *spill*. One
//!    compaction yields the `m1·z1` tier-1 slots (count is public).
//! 3. **Overflow selection** — spill entries plus `n2_cap` fresh fillers are
//!    sorted spill-first; the length-`n2_cap` prefix is the (padded,
//!    secret-count) tier-2 input. A scan of the suffix detects the
//!    negligible-probability cap overflow.
//! 4. **Tier-2 placement** — same as tier 1 with `h2`/`m2`/`z2`; any real
//!    spill here is a (negligible-probability) construction failure.
//!
//! Lookups touch exactly one tier-1 and one tier-2 bucket, determined by the
//! fresh per-batch keys, and must be performed at most once per distinct id —
//! both guaranteed by the subORAM's usage (§5).

use crate::params::TableParams;
use snoopy_crypto::{Key256, SipHash24};
use snoopy_enclave::wire::{Request, FILLER_BASE};
use snoopy_obliv::compact::ocompact;
use snoopy_obliv::ct::{ct_eq_u64, ct_lt_u64, Choice, Cmov};
use snoopy_obliv::impl_cmov_struct;
use snoopy_obliv::sort::{osort, osort_by};
use snoopy_obliv::trace::{self, TraceEvent};

/// Errors from table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OHashError {
    /// The batch contained duplicate object ids (protocol violation — the
    /// load balancer must deduplicate).
    DuplicateIds,
    /// A negligible-probability bucket/cap overflow occurred.
    TableOverflow,
}

impl std::fmt::Display for OHashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OHashError::DuplicateIds => write!(f, "batch contains duplicate object ids"),
            OHashError::TableOverflow => {
                write!(f, "hash table overflow (negligible-probability event)")
            }
        }
    }
}

impl std::error::Error for OHashError {}

/// One table slot: a request plus oblivious bookkeeping.
#[derive(Clone, Debug)]
pub struct Slot {
    /// Sort key (layout-internal, secret value).
    key: u64,
    /// 1 if this slot holds a batch entry, 0 for construction fillers
    /// (secret value).
    real_flag: u64,
    /// The payload request.
    pub req: Request,
}

impl_cmov_struct!(Slot { key, real_flag, req });

impl Slot {
    /// Secret predicate: does this slot hold a batch entry?
    pub fn is_real(&self) -> Choice {
        ct_eq_u64(self.real_flag, 1)
    }
}

/// The two-tier oblivious hash table.
///
/// `Debug` prints only the (public) parameters, never slot contents.
#[derive(Clone)]
pub struct OHashTable {
    params: TableParams,
    h1: SipHash24,
    h2: SipHash24,
    /// `m1·z1` tier-1 slots followed by `m2·z2` tier-2 slots.
    slots: Vec<Slot>,
}

impl std::fmt::Debug for OHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OHashTable").field("params", &self.params).finish_non_exhaustive()
    }
}

fn filler(id: u64, value_len: usize) -> Request {
    Request { id, kind: 0, value: vec![0u8; value_len], client: 0, seq: 0, permit: 1 }
}

impl OHashTable {
    /// Builds the table from a batch of distinct requests using fresh keys
    /// derived from `key` (the subORAM samples a new key per batch, §5).
    pub fn construct(
        batch: Vec<Request>,
        key: &Key256,
        lambda: u32,
    ) -> Result<OHashTable, OHashError> {
        assert!(!batch.is_empty(), "batch must be non-empty");
        let n = batch.len();
        let value_len = batch[0].value.len();
        trace::record(TraceEvent::Phase(0x4f48)); // "OH" construction marker

        // 1. Oblivious duplicate detection.
        let mut ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
        osort(&mut ids);
        let mut dup = Choice::FALSE;
        for i in 1..n {
            dup = dup.or(ct_eq_u64(ids[i - 1], ids[i]));
        }
        if dup.declassify() {
            return Err(OHashError::DuplicateIds);
        }

        let params = TableParams::derive(n, lambda);
        let h1 = SipHash24::from_key256(&key.derive(b"ohash-tier1"));
        let h2 = SipHash24::from_key256(&key.derive(b"ohash-tier2"));

        // 2. Tier-1 placement.
        let mut slots: Vec<Slot> = Vec::with_capacity(n + params.m1 * params.z1);
        for (i, req) in batch.into_iter().enumerate() {
            let b = h1.bin_u64(req.id, params.m1) as u64;
            slots.push(Slot { key: (b << 33) | i as u64, real_flag: 1, req });
        }
        let mut arrival = n as u64;
        for b in 0..params.m1 as u64 {
            for _ in 0..params.z1 {
                slots.push(Slot {
                    key: (b << 33) | (1 << 32) | arrival,
                    real_flag: 0,
                    req: filler(FILLER_BASE + arrival, value_len),
                });
                arrival += 1;
            }
        }
        osort_by(&mut slots, &|a: &Slot, b: &Slot| ct_lt_u64(b.key, a.key));
        let (keep1, spill) = position_scan(&slots, params.z1);

        let mut tier1 = slots.clone();
        let mut keep1_bits = keep1;
        ocompact(&mut tier1, &mut keep1_bits);
        tier1.truncate(params.m1 * params.z1);

        // 3. Overflow selection: spill-first stable sort, prefix of n2_cap.
        let total = slots.len();
        for (i, s) in slots.iter_mut().enumerate() {
            // key = (not-spill bit << 40) | arrival; spill entries first.
            let not_spill_key = (1u64 << 40) | i as u64;
            let spill_key = i as u64;
            let mut k = not_spill_key;
            k.cmov(&spill_key, spill[i]);
            s.key = k;
        }
        for j in 0..params.n2_cap {
            slots.push(Slot {
                key: (total + j) as u64,
                real_flag: 0,
                req: filler(FILLER_BASE + arrival + j as u64, value_len),
            });
        }
        osort_by(&mut slots, &|a: &Slot, b: &Slot| ct_lt_u64(b.key, a.key));
        let mut cap_overflow = Choice::FALSE;
        for s in &slots[params.n2_cap..] {
            let is_spill = ct_lt_u64(s.key, 1 << 40);
            cap_overflow = cap_overflow.or(is_spill.and(s.is_real()));
        }
        slots.truncate(params.n2_cap);
        if cap_overflow.declassify() {
            return Err(OHashError::TableOverflow);
        }

        // 4. Tier-2 placement.
        for (i, s) in slots.iter_mut().enumerate() {
            let b = h2.bin_u64(s.req.id, params.m2) as u64;
            s.key = (b << 33) | i as u64;
        }
        let mut arrival2 = params.n2_cap as u64;
        for b in 0..params.m2 as u64 {
            for _ in 0..params.z2 {
                slots.push(Slot {
                    key: (b << 33) | (1 << 32) | arrival2,
                    real_flag: 0,
                    req: filler(FILLER_BASE + arrival + params.n2_cap as u64 + arrival2, value_len),
                });
                arrival2 += 1;
            }
        }
        osort_by(&mut slots, &|a: &Slot, b: &Slot| ct_lt_u64(b.key, a.key));
        let (keep2, spill2) = position_scan(&slots, params.z2);
        let mut tier2_overflow = Choice::FALSE;
        for s in &spill2 {
            tier2_overflow = tier2_overflow.or(*s);
        }
        let mut keep2_bits = keep2;
        ocompact(&mut slots, &mut keep2_bits);
        slots.truncate(params.m2 * params.z2);
        if tier2_overflow.declassify() {
            return Err(OHashError::TableOverflow);
        }

        let mut all = tier1;
        all.extend(slots);
        Ok(OHashTable { params, h1, h2, slots: all })
    }

    /// The derived parameters.
    pub fn params(&self) -> &TableParams {
        &self.params
    }

    /// The two buckets `id` can live in (tier-1 and tier-2), as mutable
    /// slices. Callers must scan *both buckets fully* and look each id up at
    /// most once per table (§5).
    pub fn bucket_pair_mut(&mut self, id: u64) -> (&mut [Slot], &mut [Slot]) {
        let b1 = self.h1.bin_u64(id, self.params.m1);
        let b2 = self.h2.bin_u64(id, self.params.m2);
        trace::record(TraceEvent::Touch { region: 0x4f, index: b1 });
        trace::record(TraceEvent::Touch { region: 0x4f, index: self.params.m1 + b2 });
        let t1_len = self.params.m1 * self.params.z1;
        let (t1, t2) = self.slots.split_at_mut(t1_len);
        let z1 = self.params.z1;
        let z2 = self.params.z2;
        (&mut t1[b1 * z1..(b1 + 1) * z1], &mut t2[b2 * z2..(b2 + 1) * z2])
    }

    /// Tears the table down, obliviously extracting exactly the `n` batch
    /// entries (with whatever mutations lookups applied to them). The count
    /// is public; the *positions* the entries came from are not revealed
    /// (order-preserving compaction over the whole table).
    pub fn into_batch_requests(self) -> Vec<Request> {
        let n = self.params.n;
        let mut slots = self.slots;
        let mut keep: Vec<Choice> = slots.iter().map(|s| s.is_real()).collect();
        ocompact(&mut slots, &mut keep);
        slots.truncate(n);
        slots.into_iter().map(|s| s.req).collect()
    }

    /// Obliviously folds changed slot values from `other` (a copy of this
    /// table that processed a disjoint subset of the stored objects) back
    /// into `self`. "Changed" is judged against `baseline` — the pristine
    /// pre-scan table — so merging several worker copies in sequence never
    /// lets an *unchanged* copy revert an earlier worker's update. Each batch
    /// entry is matched by at most one stored object globally, so at most one
    /// copy changes any given slot.
    pub fn merge_changed_from(&mut self, baseline: &OHashTable, other: &OHashTable) {
        assert_eq!(self.slots.len(), other.slots.len(), "tables must be congruent");
        assert_eq!(self.slots.len(), baseline.slots.len(), "baseline must be congruent");
        for ((mine, base), theirs) in
            self.slots.iter_mut().zip(baseline.slots.iter()).zip(other.slots.iter())
        {
            let changed = snoopy_obliv::ct::ct_bytes_eq(&base.req.value, &theirs.req.value).not();
            mine.req.value.cmov(&theirs.req.value, changed);
        }
    }

    /// Total slot count (tier 1 + tier 2).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Position scan over bucket-sorted slots: computes, per slot, its index
/// within its bucket, returning (`keep` = placed within the first `z`,
/// `spill` = real entry that did not fit).
fn position_scan(slots: &[Slot], z: usize) -> (Vec<Choice>, Vec<Choice>) {
    let mut keep = Vec::with_capacity(slots.len());
    let mut spill = Vec::with_capacity(slots.len());
    // Buckets are < 2^30, so u64::MAX is a safe "no previous bucket" marker.
    let mut prev_bucket = u64::MAX;
    let mut pos = 0u64;
    for (i, s) in slots.iter().enumerate() {
        trace::record(TraceEvent::Touch { region: 0x51, index: i });
        let b = s.key >> 33;
        let same = ct_eq_u64(b, prev_bucket);
        let incremented = pos.wrapping_add(1);
        let mut new_pos = 0u64;
        new_pos.cmov(&incremented, same);
        pos = new_pos;
        prev_bucket = b;
        let placed = ct_lt_u64(pos, z as u64);
        keep.push(placed);
        spill.push(s.is_real().and(placed.not()));
    }
    (keep, spill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_enclave::wire::LB_DUMMY_BASE;

    const VLEN: usize = 16;

    fn batch_of(ids: &[u64]) -> Vec<Request> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Request::write(id, &id.to_le_bytes(), VLEN, 1, i as u64))
            .collect()
    }

    fn key() -> Key256 {
        Key256([42u8; 32])
    }

    #[test]
    fn constructs_and_extracts_exact_batch() {
        let ids: Vec<u64> = (0..500u64).map(|i| i * 7 + 3).collect();
        let table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
        assert_eq!(table.len(), table.params().total_slots());
        let mut out: Vec<u64> = table.into_batch_requests().iter().map(|r| r.id).collect();
        out.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn every_id_findable_in_its_bucket_pair() {
        let ids: Vec<u64> = (0..1000u64).map(|i| i * 13 + 1).collect();
        let mut table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
        for &id in &ids {
            let (b1, b2) = table.bucket_pair_mut(id);
            let found = b1.iter().chain(b2.iter()).filter(|s| s.req.id == id).count();
            assert_eq!(found, 1, "id {id} must appear exactly once across its buckets");
        }
    }

    #[test]
    fn lookups_can_mutate_entries() {
        let ids = [10u64, 20, 30];
        let mut table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
        {
            let (b1, b2) = table.bucket_pair_mut(20);
            for s in b1.iter_mut().chain(b2.iter_mut()) {
                let hit = ct_eq_u64(s.req.id, 20);
                let payload = vec![0xEEu8; VLEN];
                s.req.value.cmov(&payload, hit);
            }
        }
        let out = table.into_batch_requests();
        let r = out.iter().find(|r| r.id == 20).unwrap();
        assert_eq!(r.value, vec![0xEEu8; VLEN]);
        let other = out.iter().find(|r| r.id == 10).unwrap();
        assert_ne!(other.value, vec![0xEEu8; VLEN]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = OHashTable::construct(batch_of(&[1, 2, 3, 2]), &key(), 128).unwrap_err();
        assert_eq!(err, OHashError::DuplicateIds);
    }

    #[test]
    fn tiny_batches_work() {
        for n in [1u64, 2, 5, 32, 33] {
            let ids: Vec<u64> = (0..n).map(|i| i + 100).collect();
            let mut table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
            for &id in &ids {
                let (b1, b2) = table.bucket_pair_mut(id);
                let found = b1.iter().chain(b2.iter()).filter(|s| s.req.id == id).count();
                assert_eq!(found, 1, "n={n} id={id}");
            }
        }
    }

    #[test]
    fn lb_dummy_ids_supported() {
        // Batches mix real ids and load-balancer dummy ids; all must place.
        let mut ids: Vec<u64> = (0..100).collect();
        ids.extend((0..50).map(|k| LB_DUMMY_BASE + k));
        let table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
        let out = table.into_batch_requests();
        assert_eq!(out.len(), 150);
        assert_eq!(out.iter().filter(|r| r.is_dummy().declassify()).count(), 50);
    }

    #[test]
    fn construction_trace_independent_of_ids() {
        // Same n, same keys, different batch contents ⇒ identical traces.
        use snoopy_obliv::trace;
        let ids_a: Vec<u64> = (0..200).collect();
        let ids_b: Vec<u64> = (5000..5200).collect();
        let (ra, ta) = trace::capture(|| OHashTable::construct(batch_of(&ids_a), &key(), 128));
        let (rb, tb) = trace::capture(|| OHashTable::construct(batch_of(&ids_b), &key(), 128));
        ra.unwrap();
        rb.unwrap();
        assert_eq!(ta.fingerprint(), tb.fingerprint());
    }

    #[test]
    fn different_keys_give_different_bucket_assignments() {
        let ids: Vec<u64> = (0..64).collect();
        let mut t1 = OHashTable::construct(batch_of(&ids), &Key256([1u8; 32]), 128).unwrap();
        let mut t2 = OHashTable::construct(batch_of(&ids), &Key256([2u8; 32]), 128).unwrap();
        // Bucket index sequences must differ for at least one id (keys fresh
        // per batch unlink bucket occupancy across batches).
        let differs = (0..64u64).any(|id| {
            let a = t1.bucket_pair_mut(id).0.as_ptr() as usize;
            let b = t2.bucket_pair_mut(id).0.as_ptr() as usize;
            let base_a = t1.slots.as_ptr() as usize;
            let base_b = t2.slots.as_ptr() as usize;
            (a - base_a) != (b - base_b)
        });
        assert!(differs);
    }

    #[test]
    fn extraction_preserves_values_not_positions() {
        let ids: Vec<u64> = (0..300u64).map(|i| i * 3).collect();
        let table = OHashTable::construct(batch_of(&ids), &key(), 128).unwrap();
        let out = table.into_batch_requests();
        for r in &out {
            assert_eq!(&r.value[..8], &r.id.to_le_bytes(), "payload must ride along");
        }
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    #[test]
    fn merge_unchanged_copy_does_not_revert() {
        let batch: Vec<Request> = (0..10u64).map(|i| Request::read(i, 8, 0, i)).collect();
        let key = Key256([2u8; 32]);
        let base = OHashTable::construct(batch, &key, 128).unwrap();
        let mut merged = base.clone();
        let mut changed = base.clone();
        {
            let (b1, b2) = changed.bucket_pair_mut(3);
            for s in b1.iter_mut().chain(b2.iter_mut()) {
                let hit = ct_eq_u64(s.req.id, 3);
                s.req.value.cmov(&vec![0x77; 8], hit);
            }
        }
        let untouched = base.clone();
        merged.merge_changed_from(&base, &changed);
        merged.merge_changed_from(&base, &untouched); // must NOT revert
        let out = merged.into_batch_requests();
        assert_eq!(out.iter().find(|r| r.id == 3).unwrap().value, vec![0x77; 8]);
    }

    #[test]
    fn merge_changed_from_applies_diffs() {
        let batch: Vec<Request> = (0..20u64).map(|i| Request::read(i, 8, 0, i)).collect();
        let key = Key256([1u8; 32]);
        let base = OHashTable::construct(batch, &key, 128).unwrap();
        let mut a = base.clone();
        let mut b = base.clone();
        // Mutate id 5's slot in b only.
        {
            let (b1, b2) = b.bucket_pair_mut(5);
            for s in b1.iter_mut().chain(b2.iter_mut()) {
                let hit = ct_eq_u64(s.req.id, 5);
                s.req.value.cmov(&vec![0xEE; 8], hit);
            }
        }
        a.merge_changed_from(&base, &b);
        let out = a.into_batch_requests();
        let r5 = out.iter().find(|r| r.id == 5).unwrap();
        assert_eq!(r5.value, vec![0xEE; 8]);
        let r6 = out.iter().find(|r| r.id == 6).unwrap();
        assert_eq!(r6.value, vec![0u8; 8]);
    }
}
