//! Linearizability (paper Appendix C): random concurrent-epoch histories
//! from the synchronous engine check out against the paper's linearization
//! order, and the threaded cluster respects real-time ordering for blocking
//! clients.

use snoopy_crypto::rng::Rng;
use snoopy_repro::core::deploy::InProcessCluster;
use snoopy_repro::core::history::{check_linearizable, OpKind, OpRecord};
use snoopy_repro::core::{Snoopy, SnoopyConfig};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use std::collections::HashMap;
use std::time::Duration;

const VLEN: usize = 32;

/// Per-operation bookkeeping: `(client, seq)` -> `(lb, arrival, id, write
/// payload if any)`.
type OpMeta = HashMap<(u64, u64), (u64, u64, u64, Option<Vec<u8>>)>;

fn objects(n: u64) -> Vec<StoredObject> {
    (0..n).map(|i| StoredObject::new(i, &[0u8], VLEN)).collect()
}

#[test]
fn random_histories_are_linearizable() {
    let mut rng = snoopy_crypto::Prg::from_seed(5);
    let config = SnoopyConfig::with_machines(3, 4).value_len(VLEN);
    let n = 200u64;
    let mut sys = Snoopy::init(config, objects(n), 5);
    let initial: HashMap<u64, Vec<u8>> = (0..n).map(|i| (i, vec![0u8; VLEN])).collect();

    let mut records: Vec<OpRecord> = Vec::new();
    for epoch in 0..8u64 {
        let mut per: Vec<Vec<Request>> = vec![Vec::new(); 3];
        let mut meta: OpMeta = HashMap::new();
        let mut client = 0u64;
        for (lb, bucket) in per.iter_mut().enumerate() {
            for arrival in 0..rng.gen_range(0..20u64) {
                let id = rng.gen_range(0..n);
                if rng.gen_bool(0.5) {
                    let mut val = vec![rng.gen::<u8>(); 4];
                    val.resize(VLEN, 0);
                    bucket.push(Request::write(id, &val, VLEN, client, arrival));
                    meta.insert((client, arrival), (lb as u64, arrival, id, Some(val)));
                } else {
                    bucket.push(Request::read(id, VLEN, client, arrival));
                    meta.insert((client, arrival), (lb as u64, arrival, id, None));
                }
                client += 1;
            }
        }
        let out = sys.execute_epoch(per).unwrap();
        for resp in out {
            let (lb, arrival, id, written) = meta[&(resp.client, resp.seq)].clone();
            let kind = match written {
                Some(value) => OpKind::Write { value },
                None => OpKind::Read { returned: resp.value },
            };
            records.push(OpRecord { epoch, lb, arrival, id, kind });
        }
    }
    check_linearizable(&records, &initial, VLEN).expect("history must linearize");
}

#[test]
fn checker_rejects_forged_history() {
    // Sanity: the checker is not vacuous — claim a read of a never-written
    // value and it must object.
    let records = vec![
        OpRecord {
            epoch: 0,
            lb: 0,
            arrival: 0,
            id: 1,
            kind: OpKind::Write { value: vec![1; VLEN] },
        },
        OpRecord {
            epoch: 1,
            lb: 0,
            arrival: 0,
            id: 1,
            kind: OpKind::Read { returned: vec![2; VLEN] },
        },
    ];
    assert!(check_linearizable(&records, &HashMap::new(), VLEN).is_err());
}

#[test]
fn threaded_cluster_respects_real_time_order() {
    let config = SnoopyConfig::with_machines(2, 2).value_len(VLEN);
    let mut cluster = InProcessCluster::start(config, objects(100), 8);
    cluster.start_ticker(Duration::from_millis(5));
    let client = cluster.client();
    // A blocking write followed by a blocking read (strictly later in real
    // time) must observe the write — across arbitrary balancer choices.
    for round in 0..20u8 {
        client.write(42, &[round; 8]);
        let got = client.read(42);
        assert_eq!(&got[..8], &[round; 8], "round {round}");
    }
    cluster.shutdown();
}
