//! End-to-end obliviousness: the adversary's trace (paper §B) of a whole
//! Snoopy epoch must be a function of public information only — request
//! *count*, configuration, data size — never of ids, kinds, payloads,
//! duplicates, or skew.

use snoopy_repro::core::{Snoopy, SnoopyConfig};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use snoopy_repro::obliv::trace;

const VLEN: usize = 32;

fn objects(n: u64) -> Vec<StoredObject> {
    (0..n).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

fn epoch_fingerprint(config: SnoopyConfig, n: u64, seed: u64, per_lb: Vec<Vec<Request>>) -> u64 {
    let mut sys = Snoopy::init(config, objects(n), seed);
    let ((), t) = trace::capture(|| {
        sys.execute_epoch(per_lb).unwrap();
    });
    t.fingerprint()
}

#[test]
fn trace_independent_of_ids_kinds_and_payloads() {
    let config = SnoopyConfig::with_machines(2, 3).value_len(VLEN);
    let n = 300u64;
    // Workload A: sequential reads.
    let a = vec![
        (0..10).map(|i| Request::read(i, VLEN, i, 0)).collect(),
        (0..5).map(|i| Request::read(100 + i, VLEN, i, 1)).collect(),
    ];
    // Workload B: same counts, writes to scattered hot ids with payloads.
    let b = vec![
        (0..10).map(|i| Request::write(299 - i * 7, &[0xAB; 4], VLEN, i, 0)).collect(),
        (0..5).map(|i| Request::write(13, &[i as u8; 4], VLEN, i, 1)).collect(),
    ];
    // Workload C: same counts, every request a duplicate of one id.
    let c = vec![
        (0..10).map(|i| Request::read(7, VLEN, i, 0)).collect(),
        (0..5).map(|i| Request::read(7, VLEN, i, 1)).collect(),
    ];
    let fa = epoch_fingerprint(config, n, 1, a);
    let fb = epoch_fingerprint(config, n, 1, b);
    let fc = epoch_fingerprint(config, n, 1, c);
    assert_eq!(fa, fb, "reads vs writes must be indistinguishable");
    assert_eq!(fa, fc, "skew/duplicates must be indistinguishable");
}

#[test]
fn trace_depends_on_public_request_count() {
    // R is public information (§2.1) — a different count SHOULD change the
    // trace; this guards against the equivalence test passing vacuously.
    let config = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let n = 100u64;
    let f5 = epoch_fingerprint(
        config,
        n,
        2,
        vec![(0..5).map(|i| Request::read(i, VLEN, i, 0)).collect()],
    );
    let f6 = epoch_fingerprint(
        config,
        n,
        2,
        vec![(0..6).map(|i| Request::read(i, VLEN, i, 0)).collect()],
    );
    assert_ne!(f5, f6);
}

#[test]
fn trace_stable_across_epochs_with_same_counts() {
    // Multi-epoch: the second epoch's trace must also be content-independent
    // (fresh per-batch hash keys change *values*, not access patterns).
    let config = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let run = |ids: Vec<u64>| {
        let mut sys = Snoopy::init(config, objects(100), 3);
        sys.execute_epoch_single((0..4).map(|i| Request::read(i, VLEN, i, 0)).collect()).unwrap();
        let ((), t) = trace::capture(|| {
            sys.execute_epoch_single(
                ids.iter()
                    .enumerate()
                    .map(|(i, &id)| Request::read(id, VLEN, i as u64, 1))
                    .collect(),
            )
            .unwrap();
        });
        t.fingerprint()
    };
    assert_eq!(run(vec![1, 2, 3]), run(vec![97, 98, 99]));
}

#[test]
fn access_control_does_not_leak_permission_outcomes() {
    use snoopy_repro::core::access::{AccessControlledSnoopy, Grant};
    let config = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let grants = vec![Grant { user: 1, object: 5, write: false }];
    let run = |user: u64| {
        let mut sys = AccessControlledSnoopy::init(config, objects(50), &grants, 4);
        let ((), t) = trace::capture(|| {
            sys.execute_epoch(vec![(user, Request::read(5, VLEN, 0, 0))]).unwrap();
        });
        t.fingerprint()
    };
    // Permitted (user 1) and denied (user 9) epochs must look identical.
    assert_eq!(run(1), run(9));
}
