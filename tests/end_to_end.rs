//! Cross-crate integration: the full Snoopy stack against a sequential
//! key-value model, across configurations, storage backends, and workload
//! shapes.

use snoopy_crypto::rng::Rng;
use snoopy_repro::core::{Snoopy, SnoopyConfig};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use std::collections::HashMap;

const VLEN: usize = 64;

fn objects(n: u64) -> Vec<StoredObject> {
    (0..n).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

fn pad(bytes: &[u8]) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v.resize(VLEN, 0);
    v
}

/// Drives `epochs` random epochs against a model and checks every response
/// and the final store state.
fn drive(config: SnoopyConfig, n: u64, epochs: usize, seed: u64) {
    let mut rng = snoopy_crypto::Prg::from_seed(seed);
    let mut sys = Snoopy::init(config, objects(n), seed);
    let mut model: HashMap<u64, Vec<u8>> = (0..n).map(|i| (i, pad(&i.to_le_bytes()))).collect();
    let l = config.num_load_balancers;

    for _ in 0..epochs {
        let mut per: Vec<Vec<Request>> = vec![Vec::new(); l];
        let mut expected: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        let mut state = model.clone();
        let mut client = 0u64;
        for (lb, bucket) in per.iter_mut().enumerate() {
            let count = rng.gen_range(0..25);
            let mut lb_writes: Vec<(u64, Vec<u8>)> = Vec::new();
            for seq in 0..count {
                let id = rng.gen_range(0..n);
                let pre = state.get(&id).cloned().unwrap_or_else(|| vec![0u8; VLEN]);
                if rng.gen_bool(0.4) {
                    let val = pad(&[rng.gen::<u8>(), lb as u8, seq as u8]);
                    bucket.push(Request::write(id, &val, VLEN, client, seq));
                    lb_writes.push((id, val));
                } else {
                    bucket.push(Request::read(id, VLEN, client, seq));
                }
                expected.push((client, seq, pre));
                client += 1;
            }
            for (id, val) in lb_writes {
                state.insert(id, val);
            }
        }
        model = state;
        let out = sys.execute_epoch(per).unwrap();
        let got: HashMap<(u64, u64), Vec<u8>> =
            out.into_iter().map(|r| ((r.client, r.seq), r.value)).collect();
        assert_eq!(got.len(), expected.len());
        for (client, seq, want) in expected {
            assert_eq!(got[&(client, seq)], want, "client {client} seq {seq}");
        }
    }
    for (id, val) in &model {
        assert_eq!(sys.peek(*id).as_ref(), Some(val), "final state of {id}");
    }
}

#[test]
fn single_balancer_single_suboram() {
    drive(SnoopyConfig::with_machines(1, 1).value_len(VLEN), 100, 6, 1);
}

#[test]
fn multi_balancer_multi_suboram() {
    drive(SnoopyConfig::with_machines(3, 5).value_len(VLEN), 400, 6, 2);
}

#[test]
fn external_sealed_storage() {
    drive(SnoopyConfig::with_machines(2, 3).value_len(VLEN).external_storage(true), 150, 4, 3);
}

#[test]
fn disk_sealed_storage() {
    use snoopy_repro::core::StorageKind;
    // 150 objects across 3 subORAMs on the test disk geometry (1 KiB
    // blocks, 8-block buffer) keeps every partition streaming through real
    // file I/O rather than sitting resident.
    drive(SnoopyConfig::with_machines(2, 3).value_len(VLEN).storage(StorageKind::Disk), 150, 4, 3);
}

#[test]
fn skewed_all_same_object() {
    let config = SnoopyConfig::with_machines(2, 4).value_len(VLEN);
    let mut sys = Snoopy::init(config, objects(500), 9);
    // 100 clients hammer one object across both balancers; dedup must keep
    // batches at f(R,S) and everyone still gets the right answer.
    let mk = |client0: u64| -> Vec<Request> {
        (0..50u64).map(|i| Request::read(77, VLEN, client0 + i, i)).collect()
    };
    let out = sys.execute_epoch(vec![mk(0), mk(50)]).unwrap();
    assert_eq!(out.len(), 100);
    for r in out {
        assert_eq!(r.id, 77);
        assert_eq!(r.value, pad(&77u64.to_le_bytes()));
    }
}

#[test]
fn writes_and_reads_interleave_across_many_epochs() {
    let config = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let mut sys = Snoopy::init(config, objects(50), 11);
    for round in 0..10u64 {
        sys.execute_epoch_single(vec![Request::write(3, &round.to_le_bytes(), VLEN, 0, round)])
            .unwrap();
        let out = sys.execute_epoch_single(vec![Request::read(3, VLEN, 1, round)]).unwrap();
        assert_eq!(out[0].value, pad(&round.to_le_bytes()), "round {round}");
    }
}
