//! The threat model in action (paper §2): the cloud attacker controls
//! everything outside the enclaves — it can tamper with external memory,
//! replay sealed messages, and present impostor enclaves. Each capability
//! must be caught by the corresponding defense.

use snoopy_repro::crypto::aead::{AeadKey, Nonce};
use snoopy_repro::crypto::Key256;
use snoopy_repro::enclave::program::{establish_channel, AttestError, Enclave, EnclaveProgram};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use snoopy_repro::snoopy_suboram::{SubOram, SubOramError};

const VLEN: usize = 32;

fn objects(n: u64) -> Vec<StoredObject> {
    (0..n).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

#[test]
fn external_memory_tampering_detected_mid_scan() {
    let mut sub = SubOram::new_external(objects(64), VLEN, Key256([1u8; 32]), 128);
    // Flip one bit in the untrusted sealed store.
    assert!(sub.corrupt_block(30), "external backend exposes the tamper hook");
    let err = sub.batch_access(vec![Request::read(1, VLEN, 0, 0)]).unwrap_err();
    assert!(matches!(err, SubOramError::Integrity(_)), "{err:?}");
    // The failure is sticky (fail-stop): every later batch is refused with
    // the same typed error, so no response over half-scanned state escapes.
    let err2 = sub.batch_access(vec![Request::read(2, VLEN, 0, 1)]).unwrap_err();
    assert_eq!(err, err2);
}

#[test]
fn external_memory_rollback_detected() {
    let mut sub = SubOram::new_external(objects(64), VLEN, Key256([2u8; 32]), 128);
    // Capture the sealed state, apply a write, then roll the store back.
    let before = sub.untrusted_image().expect("external backend has untrusted bytes");
    sub.batch_access(vec![Request::write(10, &[9u8; 4], VLEN, 0, 0)]).unwrap();
    assert!(sub.restore_untrusted_image(&before));
    let err = sub.batch_access(vec![Request::read(10, VLEN, 0, 1)]).unwrap_err();
    assert!(matches!(err, SubOramError::Integrity(_)), "{err:?}");
}

#[test]
fn sealed_channel_rejects_replay_and_forgery() {
    let key = AeadKey::new(Key256([3u8; 32]));
    let msg1 = key.seal(Nonce::from_parts(1, 0), b"batch", b"epoch-0 payload");
    let _msg2 = key.seal(Nonce::from_parts(1, 1), b"batch", b"epoch-1 payload");
    // Receiver expects sequence 1: replaying message 0 fails.
    assert!(key.open(Nonce::from_parts(1, 1), b"batch", &msg1).is_err());
    // Forgery fails.
    let mut forged = msg1.clone();
    forged.bytes[3] ^= 1;
    assert!(key.open(Nonce::from_parts(1, 0), b"batch", &forged).is_err());
    // The legitimate message at the right sequence opens.
    assert!(key.open(Nonce::from_parts(1, 0), b"batch", &msg1).is_ok());
}

struct Honest;
impl EnclaveProgram for Honest {
    type In = ();
    type Out = ();
    fn program_id(&self) -> &'static str {
        "snoopy-load-balancer-v1"
    }
    fn execute(&mut self, _: ()) {}
}

struct Impostor;
impl EnclaveProgram for Impostor {
    type In = ();
    type Out = ();
    fn program_id(&self) -> &'static str {
        "evil-balancer"
    }
    fn execute(&mut self, _: ()) {}
}

#[test]
fn attestation_rejects_impostor_enclaves() {
    let secret = Key256([4u8; 32]);
    let honest = Enclave::load(Honest, 1);
    let impostor = Enclave::load(Impostor, 1);
    assert!(establish_channel(honest.report(), "snoopy-load-balancer-v1", &secret).is_ok());
    assert_eq!(
        establish_channel(impostor.report(), "snoopy-load-balancer-v1", &secret).unwrap_err(),
        AttestError::MeasurementMismatch
    );
}

#[test]
fn suboram_enforces_distinct_request_invariant() {
    // Definition 2: the subORAM's security holds only for distinct batches,
    // so it must refuse violations rather than process them.
    let mut sub = SubOram::new_in_enclave(objects(32), VLEN, Key256([5u8; 32]), 128);
    let dup = vec![Request::read(3, VLEN, 0, 0), Request::read(3, VLEN, 1, 1)];
    assert!(matches!(sub.batch_access(dup), Err(SubOramError::Hash(_))));
}
