//! Cross-baseline semantic equivalence: the same logical workload produces
//! identical key-value outcomes on Snoopy, the Obladi proxy, Path ORAM,
//! Ring ORAM, and the plaintext store. Only the leakage differs.

use snoopy_crypto::rng::Rng;
use snoopy_repro::core::{Snoopy, SnoopyConfig};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use snoopy_repro::snoopy_hierarchical::{Op as SOp, SqrtOram};
use snoopy_repro::snoopy_obladi::{ObladiProxy, ProxyRequest};
use snoopy_repro::snoopy_pathoram::{Op as POp, PathOram};
use snoopy_repro::snoopy_plaintext::PlaintextStore;
use snoopy_repro::snoopy_ringoram::{Op as ROp, RingOram};

const VLEN: usize = 32;
const N: u64 = 128;

#[derive(Clone, Debug)]
enum WOp {
    Read(u64),
    Write(u64, Vec<u8>),
}

fn workload(seed: u64, len: usize) -> Vec<WOp> {
    let mut rng = snoopy_crypto::Prg::from_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..N);
            if rng.gen_bool(0.5) {
                let mut v = vec![rng.gen::<u8>(); 4];
                v.resize(VLEN, 0);
                WOp::Write(id, v)
            } else {
                WOp::Read(id)
            }
        })
        .collect()
}

/// Applies the workload one op at a time and returns every read result.
fn run_pathoram(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let mut oram = PathOram::new(N, VLEN, 1);
    let mut out = Vec::new();
    for op in ops {
        match op {
            WOp::Read(id) => out.push((*id, oram.access(POp::Read, *id, None))),
            WOp::Write(id, v) => {
                oram.access(POp::Write, *id, Some(v));
            }
        }
    }
    out
}

fn run_ringoram(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let mut oram = RingOram::new(N, VLEN, 2);
    let mut out = Vec::new();
    for op in ops {
        match op {
            WOp::Read(id) => out.push((*id, oram.access(ROp::Read, *id, None))),
            WOp::Write(id, v) => {
                oram.access(ROp::Write, *id, Some(v));
            }
        }
    }
    out
}

fn run_sqrtoram(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let mut oram = SqrtOram::new(N, VLEN, 3);
    let mut out = Vec::new();
    for op in ops {
        match op {
            WOp::Read(id) => out.push((*id, oram.access(SOp::Read, *id, None))),
            WOp::Write(id, v) => {
                oram.access(SOp::Write, *id, Some(v));
            }
        }
    }
    out
}

fn run_plaintext(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let mut store = PlaintextStore::new(4);
    let mut out = Vec::new();
    for op in ops {
        match op {
            WOp::Read(id) => {
                out.push((*id, store.get(*id).cloned().unwrap_or_else(|| vec![0u8; VLEN])))
            }
            WOp::Write(id, v) => {
                store.set(*id, v.clone());
            }
        }
    }
    out
}

/// One-op-per-epoch Snoopy (sequential semantics for apples-to-apples).
fn run_snoopy(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let objects: Vec<StoredObject> = (0..N).map(|i| StoredObject::new(i, &[], VLEN)).collect();
    let mut sys = Snoopy::init(SnoopyConfig::with_machines(1, 2).value_len(VLEN), objects, 7);
    let mut out = Vec::new();
    for (seq, op) in ops.iter().enumerate() {
        match op {
            WOp::Read(id) => {
                let resp = sys
                    .execute_epoch_single(vec![Request::read(*id, VLEN, 0, seq as u64)])
                    .unwrap();
                out.push((*id, resp[0].value.clone()));
            }
            WOp::Write(id, v) => {
                sys.execute_epoch_single(vec![Request::write(*id, v, VLEN, 0, seq as u64)])
                    .unwrap();
            }
        }
    }
    out
}

/// One-op-per-batch Obladi (batch size 1 degenerates to sequential).
fn run_obladi(ops: &[WOp]) -> Vec<(u64, Vec<u8>)> {
    let mut proxy = ObladiProxy::new(N, VLEN, 1, 5);
    let mut out = Vec::new();
    for (seq, op) in ops.iter().enumerate() {
        match op {
            WOp::Read(id) => {
                let resp = proxy
                    .submit(ProxyRequest { addr: *id, op: ROp::Read, data: None, tag: seq as u64 })
                    .unwrap();
                out.push((*id, resp[0].value.clone()));
            }
            WOp::Write(id, v) => {
                proxy
                    .submit(ProxyRequest {
                        addr: *id,
                        op: ROp::Write,
                        data: Some(v.clone()),
                        tag: seq as u64,
                    })
                    .unwrap();
            }
        }
    }
    out
}

#[test]
fn all_six_systems_agree() {
    let ops = workload(42, 150);
    let expect = run_plaintext(&ops);
    assert_eq!(run_pathoram(&ops), expect, "Path ORAM diverges from plaintext");
    assert_eq!(run_sqrtoram(&ops), expect, "sqrt ORAM diverges from plaintext");
    assert_eq!(run_ringoram(&ops), expect, "Ring ORAM diverges from plaintext");
    assert_eq!(run_obladi(&ops), expect, "Obladi diverges from plaintext");
    assert_eq!(run_snoopy(&ops), expect, "Snoopy diverges from plaintext");
}

#[test]
fn agreement_across_seeds() {
    for seed in [1u64, 9, 77] {
        let ops = workload(seed, 60);
        let expect = run_plaintext(&ops);
        assert_eq!(run_snoopy(&ops), expect, "seed {seed}");
        assert_eq!(run_ringoram(&ops), expect, "seed {seed}");
    }
}
