//! Workspace acceptance tests for the telemetry plane: Chrome-trace dumps
//! with the nested epoch pipeline, the leakage audit over every exported
//! series, and the in-process cluster's metrics scrape.
//!
//! The tracer and metrics registry are process-wide, and the test binary
//! runs tests on parallel threads. Trace assertions therefore filter drained
//! spans by the calling thread's id, and metric assertions use presence /
//! monotonicity rather than exact counts.

use snoopy_repro::core::{Snoopy, SnoopyConfig};
use snoopy_repro::enclave::wire::{Request, StoredObject};
use snoopy_repro::telemetry::metrics::names;
use snoopy_repro::telemetry::{chrome, metrics, trace, Provenance, Secret};
use std::time::Duration;

const VLEN: usize = 32;

fn objects(n: u64) -> Vec<StoredObject> {
    (0..n).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect()
}

fn reads(n: u64, count: usize) -> Vec<Request> {
    (0..count).map(|i| Request::read((i as u64 * 7 + 3) % n, VLEN, 0, i as u64)).collect()
}

/// Acceptance: a trace dump from benchmark epochs loads as valid Chrome
/// `trace_event` JSON with `epoch/lb_make` → per-subORAM scans →
/// `epoch/lb_match` nested inside the `epoch` span.
#[test]
fn trace_dump_is_valid_chrome_json_with_nested_pipeline() {
    const N: u64 = 1 << 8;
    const SUBORAMS: usize = 3;
    let cfg = SnoopyConfig::with_machines(1, SUBORAMS).value_len(VLEN);
    let mut sys = Snoopy::init(cfg, objects(N), 11);

    let tracer = trace::tracer();
    let tid = tracer.current_tid();
    let _ = tracer.drain(); // discard init-time spans

    sys.execute_epoch_single(reads(N, 16)).expect("epoch failed");

    // Other tests share the global tracer from their own threads; keep only
    // spans recorded by this one.
    let (all, _dropped) = tracer.drain();
    let spans: Vec<_> = all.into_iter().filter(|s| s.tid == tid).collect();

    let json = trace::chrome_trace_json(&spans);
    let events = chrome::parse_chrome_trace(&json).expect("dump must be valid Chrome trace JSON");
    assert_eq!(events.len(), spans.len(), "every span becomes one complete event");

    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing span '{name}' in trace"))
    };
    let epoch = find("epoch");
    let make = find("epoch/lb_make");
    let matchv = find("epoch/lb_match");
    assert!(epoch.contains(make), "lb_make must nest inside epoch");
    assert!(epoch.contains(matchv), "lb_match must nest inside epoch");
    for s in 0..SUBORAMS {
        let scan = find(&format!("epoch/suboram_scan/{s}"));
        assert!(epoch.contains(scan), "scan {s} must nest inside epoch");
        assert!(make.ts + make.dur <= scan.ts, "scan {s} must start after lb_make ends");
        assert!(scan.ts + scan.dur <= matchv.ts, "lb_match must start after scan {s} ends");
    }

    // The oblivious building blocks show up as sub-spans of their stage.
    let osort = find("epoch/lb_make/osort");
    assert!(make.contains(osort), "osort must nest inside lb_make");
    let build = find("epoch/suboram_scan/ohash_build");
    assert!(epoch.contains(build), "ohash build must nest inside epoch");
}

/// Acceptance: every series the epoch pipeline exports carries an explicit
/// public-provenance witness — and nothing else can reach the registry. The
/// static half (a `Secret<T>` has no accessor, `observe` only takes
/// `Public<T>`) is enforced by the compile-fail doctests in
/// `snoopy_telemetry::public`; this checks the dynamic audit trail.
#[test]
fn exported_series_survive_the_leakage_audit() {
    const N: u64 = 1 << 7;
    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let mut sys = Snoopy::init(cfg, objects(N), 23);
    sys.execute_epoch_single(reads(N, 8)).expect("epoch failed");

    let audit = metrics::global().audit();
    let entry = |name: &str| {
        audit
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("series '{name}' missing from audit"))
    };

    // The epoch counter is a wire-observable event; request volume is public
    // by the §2.1 threat model; stage timings are timings of data-independent
    // code. The audit must show exactly those arguments, not merely "some".
    assert_eq!(entry(names::EPOCHS_TOTAL).provenances, vec![Provenance::WireObservable]);
    assert_eq!(entry(names::REQUESTS_TOTAL).provenances, vec![Provenance::RequestVolume]);
    assert_eq!(entry(names::BATCH_ENTRIES_TOTAL).provenances, vec![Provenance::WireObservable]);
    let stage = audit
        .iter()
        .find(|e| e.name == names::STAGE_SECONDS && e.label.is_some())
        .expect("stage histogram missing from audit");
    assert_eq!(stage.provenances, vec![Provenance::PublicTiming]);

    // Every provenance the registry has ever seen names a public source.
    for e in &audit {
        for p in &e.provenances {
            assert!(
                matches!(
                    p,
                    Provenance::Config
                        | Provenance::RequestVolume
                        | Provenance::WireObservable
                        | Provenance::PublicTiming
                        | Provenance::Derived
                ),
                "series '{}' carries non-public provenance {p:?}",
                e.name
            );
        }
    }

    // The secret side of the boundary: a post-dedup real-request count is a
    // function of which requests collided (§2.1 — secret). Wrapped in
    // `Secret`, the only terminal operation is `scrub`; there is no path
    // from here into a Counter/Gauge/Histogram.
    let post_dedup_reals = Secret::new(5u64);
    post_dedup_reals.map(|r| r + 1).scrub();
}

/// Acceptance: the in-process cluster records into the same registry the TCP
/// daemons expose, and a scrape shows the epoch/stage series advancing.
#[test]
fn in_process_cluster_scrape_exposes_epoch_and_stage_series() {
    use snoopy_repro::core::deploy::InProcessCluster;

    let reg = metrics::global();
    let epochs_before = reg.counter(names::EPOCHS_TOTAL, "epochs executed").value();
    let requests_before = reg.counter(names::REQUESTS_TOTAL, "requests").value();

    let cfg = SnoopyConfig::with_machines(1, 2).value_len(VLEN);
    let mut cluster = InProcessCluster::start(cfg, objects(64), 31);
    let client = cluster.client();
    // The balancer loop delivers responses before committing an epoch's
    // metrics, so round k's series are only guaranteed visible once round
    // k+1 has answered: run 4 rounds, assert on 3.
    for round in 0..4 {
        let rx = client.read_async(round * 5 % 64);
        cluster.tick();
        rx.recv_timeout(Duration::from_secs(30))
            .expect("cluster response")
            .expect("epoch degraded");
    }

    let text = cluster.metrics().render_prometheus();
    assert!(text.contains(&format!("# TYPE {} counter", names::EPOCHS_TOTAL)));
    assert!(text.contains(&format!("# TYPE {} histogram", names::STAGE_SECONDS)));
    for stage in ["lb_make", "sub_wait", "lb_match", "suboram_scan"] {
        assert!(
            text.contains(&format!("{}_count{{stage=\"{stage}\"}}", names::STAGE_SECONDS)),
            "scrape missing stage series '{stage}'"
        );
    }

    // Counters are global and shared with any concurrently running test, so
    // assert monotone growth by at least this cluster's own activity.
    let epochs_after = reg.counter(names::EPOCHS_TOTAL, "epochs executed").value();
    let requests_after = reg.counter(names::REQUESTS_TOTAL, "requests").value();
    assert!(epochs_after >= epochs_before + 3, "3 ticks must record >= 3 epochs");
    assert!(requests_after >= requests_before + 3, "3 reads must be counted");

    cluster.shutdown();
}
