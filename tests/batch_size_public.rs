//! The epoch batch size must be a function of public inputs only.
//!
//! Theorem 3 sizes every per-subORAM batch as `B = f(R, S, λ)` — the number
//! of requests in the epoch, the number of subORAMs, and the security
//! parameter. Nothing about the requests' *contents* (which objects, reads
//! vs writes, payload bytes, duplicate structure) may influence it: the
//! batch size, and therefore every sealed message length on the wire, is
//! exactly what the network adversary gets to see. These tests pin that
//! property by batching maximally different request sets of equal count and
//! demanding identical shapes, all the way down to ciphertext lengths.

use snoopy_core::link::Link;
use snoopy_crypto::Key256;
use snoopy_enclave::wire::Request;
use snoopy_lb::LoadBalancer;

const VLEN: usize = 32;
const LAMBDA: u32 = 128;

/// A request set of `r` clustered reads: distinct neighboring ids.
fn clustered_reads(r: usize) -> Vec<Request> {
    (0..r).map(|i| Request::read(i as u64, VLEN, i as u64, i as u64)).collect()
}

/// A request set of `r` writes, all to the *same* hot object with varied
/// payloads — the content-wise opposite of `clustered_reads`.
fn hot_writes(r: usize) -> Vec<Request> {
    (0..r)
        .map(|i| Request::write(41, &[(i % 251) as u64 as u8; 7], VLEN, i as u64, i as u64))
        .collect()
}

/// A request set of `r` reads spread over a huge sparse id space.
fn sparse_reads(r: usize) -> Vec<Request> {
    (0..r).map(|i| Request::read((i as u64) * 1_000_003 + 17, VLEN, 0, i as u64)).collect()
}

#[test]
fn batch_size_depends_only_on_count_and_suborams() {
    for s in [1usize, 2, 3, 8] {
        let lb = LoadBalancer::new(&Key256([5u8; 32]), s, VLEN, LAMBDA);
        for r in [0usize, 1, 2, 7, 33, 100] {
            let b = lb.epoch_batch_size(r);
            for requests in [clustered_reads(r), hot_writes(r), sparse_reads(r)] {
                let batches = lb.make_batches(&requests).unwrap();
                assert_eq!(batches.len(), s, "one batch per subORAM");
                for (sub, batch) in batches.iter().enumerate() {
                    assert_eq!(
                        batch.len(),
                        b,
                        "S={s} R={r} subORAM {sub}: batch size must be f(R, S), \
                         not a function of request contents"
                    );
                }
            }
        }
    }
}

#[test]
fn batch_size_is_monotone_and_covers_the_epoch() {
    let lb = LoadBalancer::new(&Key256([5u8; 32]), 4, VLEN, LAMBDA);
    let mut prev = 0;
    for r in 0..200 {
        let b = lb.epoch_batch_size(r);
        assert!(b >= prev, "B must not shrink as R grows (R={r})");
        assert!(4 * b >= r, "S·B must cover all R requests (R={r})");
        prev = b;
    }
}

#[test]
fn sealed_wire_length_is_content_independent() {
    // What actually crosses the untrusted network is the AEAD-sealed batch;
    // its ciphertext length must match for different contents of equal count.
    let s = 2;
    let lb = LoadBalancer::new(&Key256([5u8; 32]), s, VLEN, LAMBDA);
    let r = 25;
    let mut wire_lens: Vec<Vec<usize>> = Vec::new();
    for requests in [clustered_reads(r), hot_writes(r), sparse_reads(r)] {
        let batches = lb.make_batches(&requests).unwrap();
        let mut lens = Vec::new();
        for batch in &batches {
            let mut link = Link::new(Key256([6u8; 32]), 1);
            lens.push(link.seal(batch).unwrap().bytes.len());
        }
        wire_lens.push(lens);
    }
    assert_eq!(wire_lens[0], wire_lens[1]);
    assert_eq!(wire_lens[0], wire_lens[2]);
}
