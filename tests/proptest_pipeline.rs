//! Model-based property tests over the full oblivious pipeline: arbitrary
//! request mixes through the load balancer and subORAM must always match a
//! trivial sequential key-value model, and the adversary's view must stay a
//! function of public parameters only.

use proptest::prelude::*;
use snoopy_repro::crypto::Key256;
use snoopy_repro::enclave::wire::{Request, StoredObject};
use snoopy_repro::obliv::trace;
use snoopy_repro::snoopy_lb::LoadBalancer;
use snoopy_repro::snoopy_suboram::SubOram;
use std::collections::HashMap;

const VLEN: usize = 24;
const N: u64 = 64;

#[derive(Clone, Debug)]
struct PropOp {
    id: u64,
    write: bool,
    payload: u8,
}

fn op_strategy() -> impl Strategy<Value = PropOp> {
    (0..N, any::<bool>(), any::<u8>()).prop_map(|(id, write, payload)| PropOp {
        id,
        write,
        payload,
    })
}

fn to_requests(ops: &[PropOp]) -> Vec<Request> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            if op.write {
                Request::write(op.id, &[op.payload; 4], VLEN, i as u64, i as u64)
            } else {
                Request::read(op.id, VLEN, i as u64, i as u64)
            }
        })
        .collect()
}

fn pad(bytes: &[u8]) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v.resize(VLEN, 0);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One full epoch (LB → subORAMs → LB) equals the sequential model:
    /// every requester receives the pre-epoch value; last write per id wins.
    #[test]
    fn epoch_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let key = Key256([7u8; 32]);
        let s = 3usize;
        let balancer = LoadBalancer::new(&key, s, VLEN, 128);
        let objects: Vec<StoredObject> =
            (0..N).map(|i| StoredObject::new(i, &i.to_le_bytes(), VLEN)).collect();
        let mut suborams: Vec<SubOram> = snoopy_repro::snoopy_lb::partition_objects(objects, &key, s)
            .into_iter()
            .map(|p| SubOram::new_in_enclave(p, VLEN, key.derive(b"so"), 128))
            .collect();

        let requests = to_requests(&ops);
        let batches = balancer.make_batches(&requests).unwrap();
        let mut responses = Vec::new();
        for (i, batch) in batches.into_iter().enumerate() {
            if batch.is_empty() {
                responses.push(Vec::new());
            } else {
                responses.push(suborams[i].batch_access(batch).unwrap());
            }
        }
        let out = balancer.match_responses(&requests, responses);
        prop_assert_eq!(out.len(), ops.len());

        // Model: all responses = pre-epoch state.
        let pre: HashMap<u64, Vec<u8>> = (0..N).map(|i| (i, pad(&i.to_le_bytes()))).collect();
        for resp in &out {
            let want = &pre[&resp.id];
            prop_assert_eq!(&resp.value, want, "id {}", resp.id);
        }
        // Post-state: last write per id (by arrival) applied.
        let mut post = pre.clone();
        for op in &ops {
            if op.write {
                post.insert(op.id, pad(&[op.payload; 4]));
            }
        }
        for i in 0..N {
            let sub = balancer.suboram_of(i);
            let got = suborams[sub].peek(i);
            prop_assert_eq!(got.as_ref(), Some(&post[&i]), "post state {}", i);
        }
    }

    /// Two epochs with the same request COUNT but arbitrary contents give
    /// identical adversary traces.
    #[test]
    fn epoch_traces_equal_for_equal_counts(
        a in proptest::collection::vec(op_strategy(), 12),
        b in proptest::collection::vec(op_strategy(), 12),
    ) {
        let key = Key256([9u8; 32]);
        let s = 2usize;
        let run = |ops: &[PropOp]| {
            let balancer = LoadBalancer::new(&key, s, VLEN, 128);
            let objects: Vec<StoredObject> =
                (0..N).map(|i| StoredObject::new(i, &[1], VLEN)).collect();
            let mut suborams: Vec<SubOram> = snoopy_repro::snoopy_lb::partition_objects(objects, &key, s)
                .into_iter()
                .map(|p| SubOram::new_in_enclave(p, VLEN, key.derive(b"so"), 128))
                .collect();
            let requests = to_requests(ops);
            let ((), t) = trace::capture(|| {
                let batches = balancer.make_batches(&requests).unwrap();
                let mut responses = Vec::new();
                for (i, batch) in batches.into_iter().enumerate() {
                    responses.push(suborams[i].batch_access(batch).unwrap());
                }
                balancer.match_responses(&requests, responses);
            });
            t.fingerprint()
        };
        prop_assert_eq!(run(&a), run(&b));
    }

    /// Batch shape invariants hold for every workload: exactly S batches of
    /// exactly f(R,S), all ids distinct per batch, all real ids routed to
    /// their hash shard.
    #[test]
    fn batch_shape_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let key = Key256([5u8; 32]);
        let s = 4usize;
        let balancer = LoadBalancer::new(&key, s, VLEN, 128);
        let requests = to_requests(&ops);
        let batches = balancer.make_batches(&requests).unwrap();
        let b = balancer.epoch_batch_size(requests.len());
        prop_assert_eq!(batches.len(), s);
        for (shard, batch) in batches.iter().enumerate() {
            prop_assert_eq!(batch.len(), b);
            let mut ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), batch.len(), "duplicate id in a batch");
            for req in batch {
                if !req.is_dummy().declassify() {
                    prop_assert_eq!(balancer.suboram_of(req.id), shard);
                }
            }
        }
    }
}
