//! Umbrella crate for the Snoopy reproduction workspace.
//!
//! Re-exports every crate so examples and integration tests use a single
//! dependency. See `README.md` for the architecture overview, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the reproduction of
//! the paper's evaluation.

pub use snoopy_binning;
pub use snoopy_core;
pub use snoopy_core as core;
pub use snoopy_crypto;
pub use snoopy_crypto as crypto;
pub use snoopy_enclave;
pub use snoopy_enclave as enclave;
pub use snoopy_hierarchical;
pub use snoopy_lb;
pub use snoopy_netsim;
pub use snoopy_obladi;
pub use snoopy_obliv;
pub use snoopy_obliv as obliv;
pub use snoopy_ohash;
pub use snoopy_pathoram;
pub use snoopy_plaintext;
pub use snoopy_planner;
pub use snoopy_ringoram;
pub use snoopy_store;
pub use snoopy_store as store;
pub use snoopy_suboram;
pub use snoopy_telemetry;
pub use snoopy_telemetry as telemetry;
