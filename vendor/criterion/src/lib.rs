//! An offline, in-tree stand-in for the [`criterion`] benchmark harness.
//!
//! The workspace builds with zero network access, so the real crates.io
//! `criterion` cannot be fetched. This stub keeps the `benches/` targets
//! compiling and runnable: it implements `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros, timing each benchmark
//! with plain wall-clock measurements (a fixed warmup then a fixed number of
//! timed iterations) and printing mean time per iteration. No statistical
//! analysis, no HTML reports.
//!
//! When a bench binary is invoked with `--test` (as `cargo test --benches`
//! does), every benchmark body runs exactly once, as a smoke test.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// An identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f`, running it a fixed number of iterations after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup (not timed).
        for _ in 0..self.iters.min(2) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`;
        // `cargo bench -- <filter>` passes a name filter.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-') && !a.is_empty()).cloned();
        Criterion { test_mode, filter, iters: 10 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = if self.test_mode { 1 } else { self.iters };
        let mut b = Bencher { iters, total: Duration::ZERO };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok (1 iteration)");
        } else {
            let per_iter = b.total.checked_div(iters as u32).unwrap_or(Duration::ZERO);
            println!("{name:<50} {per_iter:>12.2?}/iter ({iters} iters)");
        }
    }
}

/// A group of related benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// fixed iteration count is unaffected).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        self.c.run(&full, f);
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        self.c.run(&full, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
