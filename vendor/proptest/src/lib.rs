//! An offline, in-tree stand-in for the [`proptest`] crate.
//!
//! This workspace builds with **zero network access**, so the real crates.io
//! `proptest` cannot be fetched. This stub implements exactly the API subset
//! the workspace's property tests use — the [`proptest!`] macro,
//! `prop_assert*`, `any`, ranges, tuples, `prop_map`, `collection::vec`,
//! `sample::select`, and `ProptestConfig::with_cases` — on top of the
//! workspace's own ChaCha20 PRG.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: case `i` of test `t` always sees the same inputs
//!   (seeded from `sha256(module_path::test_name, i)`), so failures are
//!   trivially reproducible without a persistence file.
//! * **No shrinking**: a failing case reports its inputs' `Debug` rendering
//!   (via the assertion message) and the case index, but is not minimized.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod test_runner {
    //! Runner configuration and the failure type `prop_assert!` produces.

    /// Per-test configuration (`ProptestConfig` in real proptest).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic per-case RNG.
    pub type TestRng = snoopy_crypto::Prg;

    /// Derives the RNG for case `case` of test `name`.
    pub fn rng_for_case(name: &str, case: u32) -> TestRng {
        let mut material = name.as_bytes().to_vec();
        material.extend_from_slice(&case.to_le_bytes());
        snoopy_crypto::Prg::new(&snoopy_crypto::Key256(snoopy_crypto::sha256::sha256(&material)))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use snoopy_crypto::rng::{FromRng, Rng, SampleUniform};

    /// Generates values of an associated type from the case RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The full uniform distribution over `T` (`any::<T>()`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform values of `T` (`proptest::prelude::any`).
    pub fn any<T: FromRng>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: FromRng> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use snoopy_crypto::rng::Rng;

    /// A length or length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use snoopy_crypto::rng::Rng;

    /// Strategy choosing uniformly among a fixed set of values.
    pub struct Select<T>(Vec<T>);

    /// `proptest::sample::select`: one of the given values, uniformly.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select: empty choice set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The crate itself, under the `prop::` alias real proptest's prelude
    /// provides (`prop::sample::select`, `prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fails the current property case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(v in prop::collection::vec(any::<u64>(), 0..10), n in 1usize..4) {
            prop_assert!(v.len() < 10);
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn maps_and_tuples(x in (0u64..10, any::<bool>()).prop_map(|(a, b)| if b { a } else { 0 })) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = crate::collection::vec(any::<u32>(), 0..50);
        let a: Vec<Vec<u32>> =
            (0..5).map(|c| s.generate(&mut crate::test_runner::rng_for_case("t", c))).collect();
        let b: Vec<Vec<u32>> =
            (0..5).map(|c| s.generate(&mut crate::test_runner::rng_for_case("t", c))).collect();
        assert_eq!(a, b);
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
